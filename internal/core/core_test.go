package core

import (
	"bytes"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"mkse/internal/bitindex"
	"mkse/internal/corpus"
	"mkse/internal/rank"
)

// Key generation dominates test time; share one deployment where state
// mutation does not matter.
var (
	fixtureOnce   sync.Once
	fixtureOwner  *Owner
	fixtureParams Params
)

func sharedOwner(t testing.TB) *Owner {
	fixtureOnce.Do(func() {
		fixtureParams = DefaultParams().WithLevels(rank.Levels{1, 5, 10})
		o, err := NewOwner(fixtureParams, 1)
		if err != nil {
			t.Fatalf("NewOwner: %v", err)
		}
		fixtureOwner = o
	})
	return fixtureOwner
}

func newUserFor(t testing.TB, o *Owner, id string) *User {
	t.Helper()
	u, err := NewUser(id, o.Params(), o.PublicKey(), o.RandomTrapdoors())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	return u
}

// fetchTrapdoors runs the in-process trapdoor exchange for a set of
// keywords.
func fetchTrapdoors(t testing.TB, o *Owner, u *User, words []string) {
	t.Helper()
	ids := u.BinIDs(words)
	keys, err := o.TrapdoorKeys(ids)
	if err != nil {
		t.Fatalf("TrapdoorKeys: %v", err)
	}
	if err := u.InstallTrapdoorKeys(ids, keys); err != nil {
		t.Fatalf("InstallTrapdoorKeys: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		ok   bool
	}{
		{"default", func(p *Params) {}, true},
		{"zero R", func(p *Params) { p.R = 0 }, false},
		{"bad D", func(p *Params) { p.D = 40 }, false},
		{"zero bins", func(p *Params) { p.Bins = 0 }, false},
		{"V > U", func(p *Params) { p.V = p.U + 1 }, false},
		{"no levels", func(p *Params) { p.Levels = nil }, false},
		{"descending levels", func(p *Params) { p.Levels = rank.Levels{5, 1} }, false},
		{"tiny rsa", func(p *Params) { p.RSABits = 128 }, false},
		{"ranking on", func(p *Params) { p.Levels = rank.Levels{1, 5, 10} }, true},
		{"no randomization", func(p *Params) { p.U, p.V = 0, 0 }, true},
	}
	for _, c := range cases {
		p := DefaultParams()
		c.mut(&p)
		err := p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParamsDerivedSizes(t *testing.T) {
	p := DefaultParams()
	if p.HMACBytes() != 336 {
		t.Errorf("HMACBytes = %d, want 336 (paper: 336-byte HMAC)", p.HMACBytes())
	}
	if p.IndexBytes() != 56 {
		t.Errorf("IndexBytes = %d, want 56 (paper: 56-byte index)", p.IndexBytes())
	}
}

func TestTrapdoorDeterministicAndKeyed(t *testing.T) {
	o := sharedOwner(t)
	a := o.Trapdoor("cloud")
	b := o.Trapdoor("cloud")
	if !a.Equal(b) {
		t.Error("trapdoor generation not deterministic")
	}
	c := o.Trapdoor("server")
	if a.Equal(c) {
		t.Error("different keywords produced identical trapdoors")
	}
	// A different owner (different bin keys) produces different trapdoors —
	// this is exactly what defeats the Section 4.1 brute-force attack.
	o2, err := NewOwner(o.Params(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Trapdoor("cloud").Equal(o2.Trapdoor("cloud")) {
		t.Error("two independent owners computed the same trapdoor")
	}
}

func TestBuildIndexLevelsAreNested(t *testing.T) {
	o := sharedOwner(t)
	doc := &corpus.Document{
		ID: "d1",
		TermFreqs: map[string]int{
			"rare": 1, "mid": 6, "hot": 12, "warm": 5,
		},
	}
	si, err := o.BuildIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Validate(o.Params()); err != nil {
		t.Fatal(err)
	}
	if len(si.Levels) != 3 {
		t.Fatalf("%d levels, want 3", len(si.Levels))
	}
	// Higher levels AND fewer keywords, so they have fewer zeros: every zero
	// of level i+1 is a zero of level i.
	for i := 0; i+1 < len(si.Levels); i++ {
		lower, higher := si.Levels[i], si.Levels[i+1]
		if lower.ZerosCount() < higher.ZerosCount() {
			t.Errorf("level %d has fewer zeros than level %d", i+1, i+2)
		}
		// lower matches anything higher matches... concretely: zeros(higher)
		// ⊆ zeros(lower) means lower.Matches(higher-as-query) is true.
		if !lower.Matches(higher) {
			t.Errorf("level %d zeros not contained in level %d zeros", i+2, i+1)
		}
	}
}

// A level no keyword reaches must be the all-ones index, which no randomized
// query can match — otherwise documents with only low-frequency keywords
// would be wildcard false accepts at high ranks.
func TestBuildIndexEmptyLevelsMatchNothing(t *testing.T) {
	o := sharedOwner(t)
	doc := &corpus.Document{ID: "lowtf", TermFreqs: map[string]int{"a": 1, "b": 2}}
	si, err := o.BuildIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds are {1,5,10}: levels 2 and 3 are empty.
	for _, li := range []int{1, 2} {
		if si.Levels[li].OnesCount() != o.Params().R {
			t.Errorf("empty level %d is not all-ones (%d ones)", li+1, si.Levels[li].OnesCount())
		}
	}
	// Any query carrying at least one zero cannot match an all-ones level.
	u := newUserFor(t, o, "empty-level-checker")
	u.SeedQueryRNG(5)
	fetchTrapdoors(t, o, u, []string{"a", "b"})
	q, err := u.BuildQuery([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if si.Levels[1].Matches(q) {
		t.Error("randomized query matched an empty level")
	}
	if !si.Levels[0].Matches(q) {
		t.Error("genuine query failed to match level 1")
	}
}

// BuildIndexes must produce exactly what sequential BuildIndex does, in
// order, regardless of worker count, and must surface errors.
func TestBuildIndexesParallelMatchesSequential(t *testing.T) {
	o := sharedOwner(t)
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 40, KeywordsPerDoc: 10, Dictionary: corpus.Dictionary(200),
		MaxTermFreq: 15, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := o.BuildIndexes(docs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16, 100} {
		par, err := o.BuildIndexes(docs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].DocID != seq[i].DocID {
				t.Fatalf("workers=%d: result %d is %q, want %q", workers, i, par[i].DocID, seq[i].DocID)
			}
			for li := range seq[i].Levels {
				if !par[i].Levels[li].Equal(seq[i].Levels[li]) {
					t.Fatalf("workers=%d: doc %s level %d differs from sequential", workers, seq[i].DocID, li+1)
				}
			}
		}
	}
	// Error propagation: one bad document aborts the batch.
	bad := append(append([]*corpus.Document{}, docs...), &corpus.Document{ID: "empty", TermFreqs: map[string]int{}})
	if _, err := o.BuildIndexes(bad, 4); err == nil {
		t.Error("batch with invalid document succeeded")
	}
}

func TestBuildIndexRejectsBadDocuments(t *testing.T) {
	o := sharedOwner(t)
	if _, err := o.BuildIndex(nil); err == nil {
		t.Error("nil document accepted")
	}
	if _, err := o.BuildIndex(&corpus.Document{ID: ""}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := o.BuildIndex(&corpus.Document{ID: "x", TermFreqs: map[string]int{}}); err == nil {
		t.Error("keyword-less document accepted")
	}
}

// End-to-end: index a corpus, query via the full trapdoor exchange, verify
// that every document containing all query keywords is returned (no false
// rejects) and that matches are rank-ordered.
func TestEndToEndSearch(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	dict := corpus.Dictionary(500)
	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 120, KeywordsPerDoc: 15, Dictionary: dict, MaxTermFreq: 15, Seed: 5,
		ContentWords: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		si, enc, err := o.Prepare(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
	}
	if server.NumDocuments() != 120 {
		t.Fatalf("server has %d docs", server.NumDocuments())
	}

	u := newUserFor(t, o, "alice")
	u.SeedQueryRNG(99)

	// Query for the keywords of a known document.
	target := docs[7]
	words := target.Keywords()[:2]
	fetchTrapdoors(t, o, u, words)
	q, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}

	// Every document genuinely containing both words must be present.
	found := make(map[string]int)
	for _, m := range matches {
		found[m.DocID] = m.Rank
	}
	for _, d := range docs {
		hasAll := true
		for _, w := range words {
			if _, ok := d.TermFreqs[w]; !ok {
				hasAll = false
				break
			}
		}
		if hasAll {
			if _, ok := found[d.ID]; !ok {
				t.Errorf("document %s contains all query keywords but was not returned", d.ID)
			}
		}
	}
	if _, ok := found[target.ID]; !ok {
		t.Fatal("target document missing from results")
	}

	// Rank ordering: non-increasing.
	for i := 1; i < len(matches); i++ {
		if matches[i].Rank > matches[i-1].Rank {
			t.Fatal("results not sorted by descending rank")
		}
	}
}

// The encrypted rank must equal the plaintext ground truth (LevelScore) for
// documents that genuinely contain the query keywords.
func TestRankMatchesPlaintextGroundTruth(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	levels := o.Params().Levels
	docs := []*corpus.Document{
		{ID: "low", TermFreqs: map[string]int{"alpha": 1, "beta": 2}},
		{ID: "mid", TermFreqs: map[string]int{"alpha": 6, "beta": 7}},
		{ID: "high", TermFreqs: map[string]int{"alpha": 12, "beta": 13}},
		{ID: "mixed", TermFreqs: map[string]int{"alpha": 12, "beta": 1}},
		{ID: "none", TermFreqs: map[string]int{"gamma": 5}},
	}
	for _, d := range docs {
		d.Content = []byte("body of " + d.ID)
		si, enc, err := o.Prepare(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
	}
	u := newUserFor(t, o, "bob")
	u.SeedQueryRNG(7)
	query := []string{"alpha", "beta"}
	fetchTrapdoors(t, o, u, query)
	q, err := u.BuildQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, m := range matches {
		got[m.DocID] = m.Rank
	}
	exact := 0
	checked := 0
	for _, d := range docs {
		want := levels.LevelScore(query, d.TermFreqs)
		if want == 0 {
			// Not a genuine match; it may or may not appear as a false
			// accept, which the FAR experiment quantifies. Skip.
			continue
		}
		checked++
		// The encrypted rank can never fall below the ground truth (a level
		// genuinely containing all query keywords always matches), but it
		// can *escalate* past it when the higher level's zeros happen to
		// cover the missing keyword's zeros — the scheme's level-walk false
		// accept, probability ≈ 10% per level at these parameters.
		if got[d.ID] < want {
			t.Errorf("doc %s: encrypted rank %d below plaintext ground truth %d (false demotion)", d.ID, got[d.ID], want)
		}
		if got[d.ID] == want {
			exact++
		}
	}
	if exact < checked/2 {
		t.Errorf("only %d of %d ranks exact; escalation should be the exception", exact, checked)
	}
}

func TestSearchTopTruncates(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*corpus.Document{
		{ID: "a", TermFreqs: map[string]int{"shared": 12}},
		{ID: "b", TermFreqs: map[string]int{"shared": 6}},
		{ID: "c", TermFreqs: map[string]int{"shared": 1}},
	} {
		si, enc, err := o.Prepare(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
	}
	u := newUserFor(t, o, "carol")
	u.SeedQueryRNG(3)
	fetchTrapdoors(t, o, u, []string{"shared"})
	q, err := u.BuildQuery([]string{"shared"})
	if err != nil {
		t.Fatal(err)
	}
	top, err := server.SearchTop(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("SearchTop(2) returned %d matches", len(top))
	}
	if top[0].DocID != "a" || top[0].Rank != 3 {
		t.Errorf("best match = %+v, want doc a at rank 3", top[0])
	}
	all, err := server.SearchTop(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Errorf("SearchTop(0) returned %d matches, want all >= 3", len(all))
	}
}

// Full retrieval: search, fetch, blind-decrypt, compare plaintext. The owner
// must never observe the raw wrapped key.
func TestEndToEndRetrievalWithBlinding(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	doc := &corpus.Document{
		ID:        "secret-report",
		TermFreqs: map[string]int{"merger": 3, "confidential": 8},
		Content:   []byte("the merger closes on friday"),
	}
	si, enc, err := o.Prepare(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(si, enc); err != nil {
		t.Fatal(err)
	}

	u := newUserFor(t, o, "dave")
	u.SeedQueryRNG(1)
	fetchTrapdoors(t, o, u, []string{"merger"})
	q, err := u.BuildQuery([]string{"merger"})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	fetched, err := server.Fetch(matches[0].DocID)
	if err != nil {
		t.Fatal(err)
	}
	rawKey := new(big.Int).SetBytes(fetched.EncKey)
	pt, err := u.DecryptDocument(fetched, func(z *big.Int) (*big.Int, error) {
		if z.Cmp(rawKey) == 0 {
			t.Error("owner saw the unblinded wrapped key")
		}
		return o.BlindDecrypt(z)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, doc.Content) {
		t.Errorf("retrieved plaintext %q, want %q", pt, doc.Content)
	}
}

// Query randomization: two queries over the same keywords must differ, yet
// both must match the same genuine documents.
func TestQueryRandomizationPreservesMatches(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	doc := &corpus.Document{ID: "d", TermFreqs: map[string]int{"kappa": 4, "lambda": 9}}
	si, enc, err := o.Prepare(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(si, enc); err != nil {
		t.Fatal(err)
	}
	u := newUserFor(t, o, "erin")
	u.SeedQueryRNG(2024)
	words := []string{"kappa", "lambda"}
	fetchTrapdoors(t, o, u, words)
	q1, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Equal(q2) {
		t.Error("two randomized queries over the same terms are identical (search pattern leaks)")
	}
	m1, err := server.Search(q1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := server.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	has := func(ms []Match, id string) bool {
		for _, m := range ms {
			if m.DocID == id {
				return true
			}
		}
		return false
	}
	if !has(m1, "d") || !has(m2, "d") {
		t.Error("randomized query failed to match the genuine document")
	}
}

func TestUserTrapdoorRequiresBinKey(t *testing.T) {
	o := sharedOwner(t)
	u := newUserFor(t, o, "frank")
	if _, err := u.Trapdoor("never-requested"); err == nil {
		t.Error("trapdoor computed without the bin key")
	}
	if u.HasTrapdoorFor("never-requested") {
		t.Error("HasTrapdoorFor reports a key the user does not hold")
	}
}

func TestUserTrapdoorMatchesOwner(t *testing.T) {
	o := sharedOwner(t)
	u := newUserFor(t, o, "grace")
	fetchTrapdoors(t, o, u, []string{"shared-word"})
	ut, err := u.Trapdoor("shared-word")
	if err != nil {
		t.Fatal(err)
	}
	if !ut.Equal(o.Trapdoor("shared-word")) {
		t.Error("user-computed trapdoor differs from owner's")
	}
}

func TestOwnerAuthenticationFlow(t *testing.T) {
	o := sharedOwner(t)
	// Unique IDs so the shared fixture survives -count=N reruns.
	id := fmt.Sprintf("henry-%d", time.Now().UnixNano())
	u := newUserFor(t, o, id)
	if err := o.RegisterUser(id, u.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := o.RegisterUser(id, u.PublicKey()); err == nil {
		t.Error("duplicate registration accepted")
	}
	msg := []byte("trapdoor request bins=[1,2,3]")
	sig, err := u.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.VerifyUser(id, msg, sig); err != nil {
		t.Errorf("legitimate signature rejected: %v", err)
	}
	if err := o.VerifyUser(id, append(msg, 'x'), sig); err == nil {
		t.Error("tampered message accepted")
	}
	if err := o.VerifyUser("nobody", msg, sig); err == nil {
		t.Error("unknown user accepted")
	}
	// Impersonation: another user signing as the victim must fail.
	mallory := newUserFor(t, o, id+"-mallory")
	badSig, err := mallory.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.VerifyUser(id, msg, badSig); err == nil {
		t.Error("impersonated signature accepted (Theorem 4 violated)")
	}
}

func TestTrapdoorKeysRejectsBadBin(t *testing.T) {
	o := sharedOwner(t)
	if _, err := o.TrapdoorKeys([]int{-1}); err == nil {
		t.Error("negative bin accepted")
	}
	if _, err := o.TrapdoorKeys([]int{o.Params().Bins}); err == nil {
		t.Error("out-of-range bin accepted")
	}
}

func TestServerUploadValidation(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	doc := &corpus.Document{ID: "v", TermFreqs: map[string]int{"w": 1}}
	si, enc, err := o.Prepare(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(nil, enc); err == nil {
		t.Error("nil index accepted")
	}
	if err := server.Upload(si, nil); err == nil {
		t.Error("nil document accepted")
	}
	enc2 := &EncryptedDocument{ID: "other", Ciphertext: enc.Ciphertext, EncKey: enc.EncKey}
	if err := server.Upload(si, enc2); err == nil {
		t.Error("mismatched IDs accepted")
	}
	// Wrong level count.
	bad := si.Clone()
	bad.Levels = bad.Levels[:1]
	if err := server.Upload(bad, enc); err == nil {
		t.Error("index with wrong level count accepted")
	}
	// Valid upload, then replacement.
	if err := server.Upload(si, enc); err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(si, enc); err != nil {
		t.Errorf("re-upload (replace) failed: %v", err)
	}
	if server.NumDocuments() != 1 {
		t.Errorf("replacement duplicated the document: %d", server.NumDocuments())
	}
}

func TestServerRejectsWrongSizeQuery(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Search(nil); err == nil {
		t.Error("nil query accepted")
	}
}

func TestFetchUnknownDocument(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Fetch("ghost"); err == nil {
		t.Error("unknown document fetched")
	}
}

func TestRotateBinKeysInvalidatesOldIndexes(t *testing.T) {
	p := DefaultParams()
	p.Bins = 16
	o, err := NewOwner(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Trapdoor("word")
	if o.Epoch() != 1 {
		t.Errorf("fresh owner epoch = %d, want 1", o.Epoch())
	}
	if err := o.RotateBinKeys(); err != nil {
		t.Fatal(err)
	}
	after := o.Trapdoor("word")
	if before.Equal(after) {
		t.Error("trapdoor unchanged after key rotation")
	}
	if o.Epoch() != 2 {
		t.Errorf("epoch after rotation = %d, want 2", o.Epoch())
	}
}

// Trapdoor expiry (§4.3): after rotation, a user observing the new epoch
// discards cached material and re-requests; the refreshed trapdoors work
// against re-built indices, while the stale ones no longer match.
func TestEpochExpiryFlow(t *testing.T) {
	p := DefaultParams()
	p.Bins = 16
	o, err := NewOwner(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	doc := &corpus.Document{ID: "d", TermFreqs: map[string]int{"omega": 3}, Content: []byte("x")}
	u := newUserFor(t, o, "epoch-user")
	u.SeedQueryRNG(9)

	upload := func() {
		si, enc, err := o.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
	}
	refresh := func() {
		ids := u.BinIDs([]string{"omega"})
		keys, err := o.TrapdoorKeys(ids)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.InstallTrapdoorKeys(ids, keys); err != nil {
			t.Fatal(err)
		}
	}
	upload()
	refresh()
	staleQ, err := u.BuildQuery([]string{"omega"})
	if err != nil {
		t.Fatal(err)
	}

	// Rotate; owner re-indexes and re-uploads (replacing the stored index).
	if err := o.RotateBinKeys(); err != nil {
		t.Fatal(err)
	}
	upload()

	// The pre-rotation query almost surely no longer matches.
	if ms, err := server.Search(staleQ); err != nil {
		t.Fatal(err)
	} else if len(ms) != 0 {
		t.Log("note: stale query matched by chance (false accept)")
	}

	// User observes the new epoch, caches flush, trapdoor gone.
	expired, err := u.ObserveEpoch(o.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if !expired {
		t.Fatal("epoch change not detected")
	}
	if u.HasTrapdoorFor("omega") {
		t.Fatal("expired trapdoor material survived ObserveEpoch")
	}
	if again, err := u.ObserveEpoch(o.Epoch()); err != nil || again {
		t.Fatalf("repeated ObserveEpoch: expired=%v err=%v", again, err)
	}

	// Refresh the enrollment package (decoy trapdoors also expired) and the
	// bin keys, then search again: must match at rank >= 1.
	if err := u.RefreshEnrollment(o.RandomTrapdoors()); err != nil {
		t.Fatal(err)
	}
	refresh()
	q, err := u.BuildQuery([]string{"omega"})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].DocID != "d" {
		t.Fatalf("refreshed query failed: %v", ms)
	}
}

// Vector-mode trapdoors (§4.2 alternative): the owner ships per-keyword
// vectors; the user hashes nothing and the bin secret never leaves the
// owner, yet queries behave identically.
func TestVectorModeTrapdoors(t *testing.T) {
	o := sharedOwner(t)
	dict := []string{"vm-alpha", "vm-beta", "vm-gamma", "vm-delta"}
	o.RegisterDictionary(dict)

	u := newUserFor(t, o, "vector-user")
	u.SeedQueryRNG(11)
	binIDs := u.BinIDs([]string{"vm-alpha", "vm-beta"})
	vs, err := o.TrapdoorVectors(binIDs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vs["vm-alpha"]; !ok {
		t.Fatal("requested keyword's vector missing from response")
	}
	if err := u.InstallTrapdoorVectors(vs); err != nil {
		t.Fatal(err)
	}
	if !u.HasTrapdoorFor("vm-alpha") {
		t.Fatal("vector-mode trapdoor not visible to HasTrapdoorFor")
	}
	// The user's trapdoor equals the owner's, with zero hash ops spent.
	u.Costs.Reset()
	td, err := u.Trapdoor("vm-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !td.Equal(o.Trapdoor("vm-alpha")) {
		t.Error("vector-mode trapdoor differs from owner's computation")
	}
	if got := u.Costs.Snapshot().HashOps; got != 0 {
		t.Errorf("vector mode spent %d hash ops, want 0", got)
	}
	// Queries built from vectors match documents like key-mode queries.
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	doc := &corpus.Document{ID: "vm-doc", TermFreqs: map[string]int{"vm-alpha": 2, "vm-beta": 7}}
	si, enc, err := o.Prepare(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(si, enc); err != nil {
		t.Fatal(err)
	}
	q, err := u.BuildQuery([]string{"vm-alpha", "vm-beta"})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := server.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].DocID != "vm-doc" {
		t.Fatalf("vector-mode query failed: %v", ms)
	}
}

func TestTrapdoorVectorsRequireDictionary(t *testing.T) {
	p := DefaultParams()
	p.Bins = 8
	o, err := NewOwner(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.TrapdoorVectors([]int{0}); err == nil {
		t.Error("vector mode served without a dictionary")
	}
	o.RegisterDictionary([]string{"w"})
	if _, err := o.TrapdoorVectors([]int{99}); err == nil {
		t.Error("out-of-range bin accepted")
	}
}

func TestInstallTrapdoorVectorsValidation(t *testing.T) {
	o := sharedOwner(t)
	u := newUserFor(t, o, "vector-validator")
	if err := u.InstallTrapdoorVectors(nil); err != nil {
		t.Fatalf("empty install failed: %v", err)
	}
	if err := u.InstallTrapdoorVectors(map[string]*bitindex.Vector{"x": nil}); err == nil {
		t.Error("nil vector accepted")
	}
	if err := u.InstallTrapdoorVectors(map[string]*bitindex.Vector{"x": bitindex.New(8)}); err == nil {
		t.Error("wrong-length vector accepted")
	}
}

func TestNewOwnerDeterministicReproducible(t *testing.T) {
	p := DefaultParams()
	p.Bins = 8
	a, err := NewOwnerDeterministic(p, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOwnerDeterministic(p, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Trapdoor("word").Equal(b.Trapdoor("word")) {
		t.Error("same key seed produced different trapdoors")
	}
	c, err := NewOwnerDeterministic(p, 1, 78)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trapdoor("word").Equal(c.Trapdoor("word")) {
		t.Error("different key seeds produced identical trapdoors")
	}
}

func TestDocumentKeyBookkeeping(t *testing.T) {
	o := sharedOwner(t)
	doc := &corpus.Document{ID: "bookkeeping", TermFreqs: map[string]int{"k": 1}, Content: []byte("x")}
	if _, ok := o.DocumentKey("bookkeeping"); ok {
		t.Fatal("key present before encryption")
	}
	if _, err := o.EncryptDocument(doc); err != nil {
		t.Fatal(err)
	}
	if k, ok := o.DocumentKey("bookkeeping"); !ok || len(k) == 0 {
		t.Error("key missing after encryption")
	}
}

func TestServerAccessors(t *testing.T) {
	o := sharedOwner(t)
	server, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	if server.Params().R != o.Params().R {
		t.Error("Params not preserved")
	}
	for _, id := range []string{"acc-1", "acc-2"} {
		doc := &corpus.Document{ID: id, TermFreqs: map[string]int{"k": 1}}
		si, enc, err := o.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Upload(si, enc); err != nil {
			t.Fatal(err)
		}
	}
	ids := server.DocumentIDs()
	if len(ids) != 2 || ids[0] != "acc-1" || ids[1] != "acc-2" {
		t.Errorf("DocumentIDs = %v, want upload order", ids)
	}
	// Export visits every stored document and stops on error.
	visited := 0
	if err := server.Export(func(si *SearchIndex, doc *EncryptedDocument) error {
		if si.DocID != doc.ID {
			t.Errorf("export pairs mismatched: %s vs %s", si.DocID, doc.ID)
		}
		visited++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 2 {
		t.Errorf("Export visited %d docs, want 2", visited)
	}
	sentinel := fmt.Errorf("stop")
	if err := server.Export(func(*SearchIndex, *EncryptedDocument) error { return sentinel }); err != sentinel {
		t.Errorf("Export did not propagate the callback error: %v", err)
	}
}

func TestBuildQueryPlainDeterministic(t *testing.T) {
	o := sharedOwner(t)
	u := newUserFor(t, o, "plain-query-user")
	fetchTrapdoors(t, o, u, []string{"plain-a", "plain-b"})
	q1, err := u.BuildQueryPlain([]string{"plain-a", "plain-b"})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := u.BuildQueryPlain([]string{"plain-a", "plain-b"})
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Equal(q2) {
		t.Error("plain queries are not deterministic")
	}
	want := o.Trapdoor("plain-a").And(o.Trapdoor("plain-b"))
	if !q1.Equal(want) {
		t.Error("plain query is not the AND of the trapdoors")
	}
	if _, err := u.BuildQueryPlain(nil); err == nil {
		t.Error("empty plain query accepted")
	}
	if u.KeyEpoch() != 1 {
		t.Errorf("fresh user epoch = %d, want 1", u.KeyEpoch())
	}
}

// Direct owner state round trip at the core level (the store package tests
// the serialized form).
func TestOwnerStateRoundTripCore(t *testing.T) {
	p := DefaultParams()
	p.Bins = 8
	o, err := NewOwner(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOwner(o.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Trapdoor("state").Equal(o.Trapdoor("state")) {
		t.Error("restored owner computes different trapdoors")
	}
}

func TestRestoreOwnerValidation(t *testing.T) {
	if _, err := RestoreOwner(nil); err == nil {
		t.Error("nil state accepted")
	}
	p := DefaultParams()
	p.Bins = 8
	o, err := NewOwner(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	st := o.ExportState()
	st.RandomWords = st.RandomWords[:3]
	if _, err := RestoreOwner(st); err == nil {
		t.Error("state with wrong decoy count accepted")
	}
	st = o.ExportState()
	st.RSAKeyDER = []byte("garbage")
	if _, err := RestoreOwner(st); err == nil {
		t.Error("state with corrupt RSA key accepted")
	}
	st = o.ExportState()
	st.BinKeys = st.BinKeys[:2]
	if _, err := RestoreOwner(st); err == nil {
		t.Error("state with missing bin keys accepted")
	}
	st = o.ExportState()
	st.Params.R = -1
	if _, err := RestoreOwner(st); err == nil {
		t.Error("state with invalid params accepted")
	}
}

func TestCostCountersTrackOperations(t *testing.T) {
	p := DefaultParams()
	p.Bins = 16
	o, err := NewOwner(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	o.Costs.Reset()
	doc := &corpus.Document{ID: "c", TermFreqs: map[string]int{"a": 1, "b": 2, "c": 3}}
	if _, err := o.BuildIndex(doc); err != nil {
		t.Fatal(err)
	}
	snap := o.Costs.Snapshot()
	if snap.HashOps != 3 {
		t.Errorf("HashOps = %d, want 3 (one per distinct keyword)", snap.HashOps)
	}
	if snap.BitwiseProducts != 3 {
		t.Errorf("BitwiseProducts = %d, want 3", snap.BitwiseProducts)
	}
}

func TestNewUserValidation(t *testing.T) {
	o := sharedOwner(t)
	if _, err := NewUser("", o.Params(), o.PublicKey(), o.RandomTrapdoors()); err == nil {
		t.Error("empty user ID accepted")
	}
	if _, err := NewUser("x", o.Params(), nil, o.RandomTrapdoors()); err == nil {
		t.Error("missing owner key accepted")
	}
	if _, err := NewUser("x", o.Params(), o.PublicKey(), nil); err == nil {
		t.Error("missing random trapdoors accepted")
	}
	short := o.RandomTrapdoors()[:5]
	if _, err := NewUser("x", o.Params(), o.PublicKey(), short); err == nil {
		t.Error("short random trapdoor package accepted")
	}
}

func TestBuildQueryValidation(t *testing.T) {
	o := sharedOwner(t)
	u := newUserFor(t, o, "iris")
	if _, err := u.BuildQuery(nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := u.BuildQuery([]string{"no-key-installed"}); err == nil {
		t.Error("query without trapdoor keys accepted")
	}
}

func TestInstallTrapdoorKeysValidation(t *testing.T) {
	o := sharedOwner(t)
	u := newUserFor(t, o, "judy")
	if err := u.InstallTrapdoorKeys([]int{1, 2}, [][]byte{{1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := u.InstallTrapdoorKeys([]int{-1}, [][]byte{{1}}); err == nil {
		t.Error("negative bin accepted")
	}
	if err := u.InstallTrapdoorKeys([]int{1}, [][]byte{nil}); err == nil {
		t.Error("empty key accepted")
	}
}
