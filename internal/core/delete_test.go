package core

import (
	"errors"
	"fmt"
	"testing"
)

// Deleting documents must leave search output byte-identical to a server
// that never stored them, for every shard layout — the swap-removed arena
// rows may be visited by a scan neither as matches nor as metadata.
func TestDeleteMatchesNeverUploadedBaseline(t *testing.T) {
	o := sharedOwner(t)
	layouts := []struct{ shards, workers int }{{1, 1}, {4, 2}, {7, 16}}
	servers := make([]*Server, len(layouts))
	for i, l := range layouts {
		srv, err := NewServerSharded(o.Params(), l.shards, l.workers)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	docs := uploadCorpus(t, o, 120, 77, servers...)

	// Delete every third document from each server.
	deleted := make(map[string]bool)
	for i := 0; i < len(docs); i += 3 {
		deleted[docs[i].ID] = true
		for _, srv := range servers {
			if err := srv.Delete(docs[i].ID); err != nil {
				t.Fatalf("Delete(%s): %v", docs[i].ID, err)
			}
		}
	}

	// Survivor-only reference server, never saw the deleted documents.
	ref, err := NewServerSharded(o.Params(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if deleted[d.ID] {
			continue
		}
		si, err := o.BuildIndex(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Upload(si, &EncryptedDocument{ID: d.ID, Ciphertext: []byte(d.ID), EncKey: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}

	u := newUserFor(t, o, "delete-prop")
	u.SeedQueryRNG(7)
	for qi := 0; qi < 6; qi++ {
		words := docs[qi*5].Keywords()[:1+qi%2]
		fetchTrapdoors(t, o, u, words)
		q, err := u.BuildQuery(words)
		if err != nil {
			t.Fatal(err)
		}
		want := searchReference(t, ref, q, 0)
		for li, srv := range servers {
			got, err := srv.SearchTop(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, fmt.Sprintf("layout %d, query %d", li, qi), got, want)
			for _, m := range got {
				if deleted[m.DocID] {
					t.Fatalf("layout %d: deleted document %s returned by search", li, m.DocID)
				}
			}
		}
	}

	for li, srv := range servers {
		if got, want := srv.NumDocuments(), len(docs)-len(deleted); got != want {
			t.Fatalf("layout %d: NumDocuments = %d, want %d", li, got, want)
		}
		for id := range deleted {
			if _, err := srv.Fetch(id); !errors.Is(err, ErrNotFound) {
				t.Fatalf("layout %d: Fetch(%s) after delete = %v, want ErrNotFound", li, id, err)
			}
		}
		for _, id := range srv.DocumentIDs() {
			if deleted[id] {
				t.Fatalf("layout %d: deleted document %s still listed", li, id)
			}
		}
	}
}

func TestDeleteUnknownDocument(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServer(o.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Delete("never-uploaded"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete of unknown ID = %v, want ErrNotFound", err)
	}
}

// A deleted ID can be re-uploaded; it re-enters the store as a new document
// (fetchable, searchable, at the end of the upload order).
func TestDeleteThenReupload(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	docs := uploadCorpus(t, o, 20, 99, srv)
	victim := docs[4]
	if err := srv.Delete(victim.ID); err != nil {
		t.Fatal(err)
	}
	si, err := o.BuildIndex(victim)
	if err != nil {
		t.Fatal(err)
	}
	body := &EncryptedDocument{ID: victim.ID, Ciphertext: []byte("take two"), EncKey: []byte{2}}
	if err := srv.Upload(si, body); err != nil {
		t.Fatalf("re-upload after delete: %v", err)
	}
	if got, err := srv.Fetch(victim.ID); err != nil || string(got.Ciphertext) != "take two" {
		t.Fatalf("Fetch after re-upload = %v, %v", got, err)
	}
	ids := srv.DocumentIDs()
	if ids[len(ids)-1] != victim.ID {
		t.Fatalf("re-uploaded document should be last in upload order, got %v", ids)
	}
	if srv.NumDocuments() != len(docs) {
		t.Fatalf("NumDocuments = %d, want %d", srv.NumDocuments(), len(docs))
	}
}

// Emptying the store by deletion leaves a server indistinguishable from a
// fresh one, and the freed arena capacity is released.
func TestDeleteEverything(t *testing.T) {
	o := sharedOwner(t)
	srv, err := NewServerSharded(o.Params(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	docs := uploadCorpus(t, o, 200, 5, srv)
	for _, d := range docs {
		if err := srv.Delete(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	if n := srv.NumDocuments(); n != 0 {
		t.Fatalf("NumDocuments = %d after deleting everything", n)
	}
	for _, sh := range srv.shards {
		for l, arena := range sh.levels {
			if len(arena) != 0 {
				t.Fatalf("level-%d arena still holds %d words", l+1, len(arena))
			}
			if cap(arena) >= 64*sh.stride {
				t.Fatalf("level-%d arena capacity %d not released", l+1, cap(arena))
			}
		}
	}
	u := newUserFor(t, o, "delete-all")
	words := docs[0].Keywords()[:1]
	fetchTrapdoors(t, o, u, words)
	q, err := u.BuildQuery(words)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty server returned %d matches", len(res))
	}
}
