package core

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"mkse/internal/bins"
	"mkse/internal/bitindex"
	"mkse/internal/blindrsa"
	"mkse/internal/corpus"
	"mkse/internal/costs"
	"mkse/internal/kdf"
	"mkse/internal/sym"
)

// Owner is the data owner of Figure 1: it holds the per-bin HMAC keys, the
// RSA key pair and every per-document symmetric key; it builds search
// indices and encrypted documents for upload, answers trapdoor requests by
// bin ID, and performs blind decryptions during document retrieval. An Owner
// is safe for concurrent use.
type Owner struct {
	params  Params
	binKeys *bins.KeySet
	rsaKey  *blindrsa.PrivateKey

	randomWords     []string           // the U non-dictionary keywords of Section 6
	randomTrapdoors []*bitindex.Vector // their index vectors, shared with users
	randomAll       *bitindex.Vector   // AND of all U, folded into every document level

	mu      sync.Mutex
	docKeys map[string][]byte              // docID → symmetric key
	users   map[string]*blindrsa.PublicKey // authorized users' signature keys
	epoch   int64                          // bumped by RotateBinKeys (§4.3 trapdoor expiry)
	binDict map[int][]string               // bin → dictionary words, for vector-mode trapdoors

	// Costs tallies the owner-side operation counts of Table 2.
	Costs costs.Counters
}

// NewOwner creates a data owner with fresh bin keys, a fresh RSA key pair
// and U fresh random keywords (drawn from the given seed so experiments are
// reproducible; the seed influences only the random-keyword *strings*, whose
// indices are still keyed by the secret bin keys).
func NewOwner(p Params, randomSeed int64) (*Owner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	binKeys, err := bins.NewKeySet(p.Bins)
	if err != nil {
		return nil, err
	}
	return newOwner(p, binKeys, randomSeed)
}

// NewOwnerDeterministic creates an owner whose bin keys derive from keySeed
// (math/rand), making index and trapdoor material exactly reproducible.
// For experiments and tests only — production owners must use NewOwner's
// crypto/rand keys.
func NewOwnerDeterministic(p Params, randomSeed, keySeed int64) (*Owner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	binKeys, err := bins.NewSeededKeySet(p.Bins, keySeed)
	if err != nil {
		return nil, err
	}
	return newOwner(p, binKeys, randomSeed)
}

func newOwner(p Params, binKeys *bins.KeySet, randomSeed int64) (*Owner, error) {
	rsaKey, err := blindrsa.GenerateKey(p.RSABits)
	if err != nil {
		return nil, err
	}
	o := &Owner{
		params:  p,
		binKeys: binKeys,
		rsaKey:  rsaKey,
		docKeys: make(map[string][]byte),
		users:   make(map[string]*blindrsa.PublicKey),
		epoch:   1,
	}
	o.randomWords = corpus.RandomKeywords(p.U, randomSeed)
	o.randomTrapdoors = make([]*bitindex.Vector, p.U)
	o.randomAll = bitindex.NewOnes(p.R)
	for i, w := range o.randomWords {
		o.randomTrapdoors[i] = o.keywordIndex(w)
		o.randomAll.AndInto(o.randomTrapdoors[i])
	}
	return o, nil
}

// Params returns the scheme parameters.
func (o *Owner) Params() Params { return o.params }

// PublicKey returns the owner's RSA public key, published to users and the
// server.
func (o *Owner) PublicKey() *blindrsa.PublicKey { return o.rsaKey.Public() }

// RandomTrapdoors returns the index vectors of the U random keywords. They
// are part of every authorized user's enrollment package (a user needs V of
// them per query); they are never sent to the server.
func (o *Owner) RandomTrapdoors() []*bitindex.Vector {
	out := make([]*bitindex.Vector, len(o.randomTrapdoors))
	for i, v := range o.randomTrapdoors {
		out[i] = v.Clone()
	}
	return out
}

// keywordIndex computes the trapdoor I_w of a keyword: the r-bit reduction
// of the l-bit HMAC under the keyword's bin key (Section 4.1). This is the
// same computation on the owner (index generation) and user (query
// generation) sides.
func (o *Owner) keywordIndex(w string) *bitindex.Vector {
	o.mu.Lock()
	ks := o.binKeys // pointer copy under the lock; rotation swaps it
	o.mu.Unlock()
	key := ks.KeyFor(w)
	o.Costs.HashOps.Add(1)
	return bitindex.Reduce(kdf.ExpandString(key, w, o.params.HMACBytes()), o.params.R, o.params.D)
}

// Trapdoor exposes the keyword index for callers that legitimately hold the
// owner role (index construction, tests, attack experiments). Users obtain
// trapdoors through TrapdoorKeys instead.
func (o *Owner) Trapdoor(w string) *bitindex.Vector { return o.keywordIndex(w) }

// BuildIndex constructs the η-level search index of a document (Equations 1
// and 2 per level, Section 5 for the level structure). Every level also
// folds in all U random keywords so that randomized queries (which AND in V
// of them) still match at every level.
func (o *Owner) BuildIndex(doc *corpus.Document) (*SearchIndex, error) {
	if doc == nil || doc.ID == "" {
		return nil, fmt.Errorf("core: document without ID")
	}
	if len(doc.TermFreqs) == 0 {
		return nil, fmt.Errorf("core: document %q has no keywords", doc.ID)
	}
	// Compute each distinct keyword's index once, then fold per level.
	cache := make(map[string]*bitindex.Vector, len(doc.TermFreqs))
	si := &SearchIndex{DocID: doc.ID, Levels: make([]*bitindex.Vector, o.params.Eta())}
	for li := 0; li < o.params.Eta(); li++ {
		words := o.params.Levels.KeywordsAtLevel(doc.TermFreqs, li+1)
		if len(words) == 0 {
			// No keyword clears this level's threshold. The all-ones index
			// (no zeros) matches no randomized query: the paper's Algorithm 1
			// stops here. Folding in the random keywords instead would make
			// the level a wildcard that *any* query has a good chance of
			// matching, inflating high-rank false accepts.
			si.Levels[li] = bitindex.NewOnes(o.params.R)
			continue
		}
		level := o.randomAll.Clone()
		for _, w := range words {
			idx, ok := cache[w]
			if !ok {
				idx = o.keywordIndex(w)
				cache[w] = idx
			}
			level.AndInto(idx)
			o.Costs.BitwiseProducts.Add(1)
		}
		si.Levels[li] = level
	}
	return si, nil
}

// BuildIndexes builds search indices for a batch of documents using the
// given number of parallel workers (<= 0 means GOMAXPROCS). The paper notes
// that "index calculation problem is of highly parallelized nature"
// (Section 8.1); per-keyword HMACs are independent, so the speedup is near
// linear. Results are returned in input order; the first error aborts the
// batch.
func (o *Owner) BuildIndexes(docs []*corpus.Document, workers int) ([]*SearchIndex, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		out := make([]*SearchIndex, len(docs))
		for i, d := range docs {
			si, err := o.BuildIndex(d)
			if err != nil {
				return nil, err
			}
			out[i] = si
		}
		return out, nil
	}
	out := make([]*SearchIndex, len(docs))
	errs := make(chan error, workers)
	next := make(chan int)
	go func() {
		for i := range docs {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		go func() {
			for i := range next {
				si, err := o.BuildIndex(docs[i])
				if err != nil {
					errs <- err
					return
				}
				out[i] = si
			}
			errs <- nil
		}()
	}
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// EncryptDocument encrypts a document body under a fresh symmetric key,
// records the key, and wraps it under the owner's RSA public key for storage
// at the server (Section 4.4).
func (o *Owner) EncryptDocument(doc *corpus.Document) (*EncryptedDocument, error) {
	if doc == nil || doc.ID == "" {
		return nil, fmt.Errorf("core: document without ID")
	}
	sk, err := sym.NewKey()
	if err != nil {
		return nil, err
	}
	ct, err := sym.Encrypt(sk, doc.Content)
	if err != nil {
		return nil, err
	}
	o.Costs.SymEncrypts.Add(1)
	encKey, err := o.rsaKey.PublicKey.EncryptKey(sk)
	if err != nil {
		return nil, err
	}
	o.Costs.ModExps.Add(1)
	o.mu.Lock()
	o.docKeys[doc.ID] = sk
	o.mu.Unlock()
	return &EncryptedDocument{ID: doc.ID, Ciphertext: ct, EncKey: encKey}, nil
}

// Prepare is the owner's full offline step for one document: build the
// search index and the encrypted payload.
func (o *Owner) Prepare(doc *corpus.Document) (*SearchIndex, *EncryptedDocument, error) {
	si, err := o.BuildIndex(doc)
	if err != nil {
		return nil, nil, err
	}
	enc, err := o.EncryptDocument(doc)
	if err != nil {
		return nil, nil, err
	}
	return si, enc, nil
}

// RegisterUser records an authorized user's signature verification key.
func (o *Owner) RegisterUser(userID string, pub *blindrsa.PublicKey) error {
	if userID == "" || pub == nil {
		return fmt.Errorf("core: invalid user registration")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.users[userID]; dup {
		return fmt.Errorf("core: user %q already registered", userID)
	}
	o.users[userID] = pub
	return nil
}

// VerifyUser checks a user's signature over a protocol message; every
// user→owner request must pass this check (non-impersonation, Theorem 4).
func (o *Owner) VerifyUser(userID string, msg, sig []byte) error {
	o.mu.Lock()
	pub := o.users[userID]
	o.mu.Unlock()
	if pub == nil {
		return fmt.Errorf("core: unknown user %q", userID)
	}
	o.Costs.Verifications.Add(1)
	if err := pub.Verify(msg, sig); err != nil {
		return fmt.Errorf("core: user %q: %w", userID, err)
	}
	return nil
}

// TrapdoorKeys answers a trapdoor request: the secret HMAC keys of the
// requested bins (Section 4.2). The caller (protocol layer) authenticates
// the user first via VerifyUser. Unknown bin IDs are an error — a
// well-behaved client derives bin IDs from the public GetBin hash and cannot
// produce one out of range.
func (o *Owner) TrapdoorKeys(binIDs []int) ([][]byte, error) {
	o.mu.Lock()
	ks := o.binKeys
	o.mu.Unlock()
	out := make([][]byte, len(binIDs))
	for i, b := range binIDs {
		if b < 0 || b >= o.params.Bins {
			return nil, fmt.Errorf("core: bin %d out of range [0,%d)", b, o.params.Bins)
		}
		out[i] = ks.Key(b)
	}
	return out, nil
}

// BlindDecrypt performs the owner side of the blinded retrieval protocol:
// z̄ = z^d mod N. By construction the owner cannot tell which document key
// it is decrypting (Theorem 1).
func (o *Owner) BlindDecrypt(z *big.Int) (*big.Int, error) {
	o.Costs.ModExps.Add(1)
	return o.rsaKey.DecryptInt(z)
}

// DocumentKey returns the symmetric key of a document. It exists for the
// owner's own bookkeeping and for tests; the retrieval protocol never calls
// it — users learn keys only through BlindDecrypt.
func (o *Owner) DocumentKey(docID string) ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	k, ok := o.docKeys[docID]
	return k, ok
}

// RotateBinKeys replaces every bin key with a fresh one and advances the
// key epoch, implementing the paper's key-rotation hardening ("the data
// owner can change the HMAC keys periodically. Each trapdoor will have an
// expiration time", Section 4.3). Previously issued trapdoors and
// previously built document indices become stale together: the owner must
// rebuild and re-upload indices, and users — who see the new epoch in the
// next trapdoor response — must discard cached keys and re-request.
func (o *Owner) RotateBinKeys() error {
	fresh, err := bins.NewKeySet(o.params.Bins)
	if err != nil {
		return err
	}
	o.mu.Lock()
	o.binKeys = fresh
	o.epoch++
	o.mu.Unlock()
	// Random-keyword trapdoors are derived from bin keys; recompute.
	o.randomAll = bitindex.NewOnes(o.params.R)
	for i, w := range o.randomWords {
		o.randomTrapdoors[i] = o.keywordIndex(w)
		o.randomAll.AndInto(o.randomTrapdoors[i])
	}
	return nil
}

// OwnerState is the data owner's complete persistent secret state: bin
// keys, RSA key, epoch, decoy keywords, per-document keys and enrolled
// users. It exists so an owner daemon can restart without invalidating the
// deployed indices and issued trapdoors. Treat serialized state as highly
// sensitive — it is the scheme's entire secret material.
type OwnerState struct {
	Params      Params
	Epoch       int64
	RSAKeyDER   []byte
	BinKeys     [][]byte
	RandomWords []string
	DocKeys     map[string][]byte
	Users       map[string][]byte // userID → PKCS#1 public key
	Dictionary  []string          // for vector-mode trapdoors; may be nil
}

// ExportState snapshots the owner's secret state.
func (o *Owner) ExportState() *OwnerState {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := &OwnerState{
		Params:      o.params,
		Epoch:       o.epoch,
		RSAKeyDER:   o.rsaKey.Marshal(),
		BinKeys:     make([][]byte, o.params.Bins),
		RandomWords: append([]string(nil), o.randomWords...),
		DocKeys:     make(map[string][]byte, len(o.docKeys)),
		Users:       make(map[string][]byte, len(o.users)),
	}
	for i := 0; i < o.params.Bins; i++ {
		st.BinKeys[i] = append([]byte(nil), o.binKeys.Key(i)...)
	}
	for id, k := range o.docKeys {
		st.DocKeys[id] = append([]byte(nil), k...)
	}
	for id, pub := range o.users {
		st.Users[id] = pub.Marshal()
	}
	if o.binDict != nil {
		for _, words := range o.binDict {
			st.Dictionary = append(st.Dictionary, words...)
		}
	}
	return st
}

// RestoreOwner rebuilds an owner from exported state.
func RestoreOwner(st *OwnerState) (*Owner, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil owner state")
	}
	if err := st.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: restoring owner: %w", err)
	}
	if len(st.RandomWords) != st.Params.U {
		return nil, fmt.Errorf("core: state has %d random words, scheme uses U=%d", len(st.RandomWords), st.Params.U)
	}
	binKeys, err := bins.NewKeySetFromKeys(st.BinKeys)
	if err != nil {
		return nil, fmt.Errorf("core: restoring bin keys: %w", err)
	}
	if binKeys.Bins() != st.Params.Bins {
		return nil, fmt.Errorf("core: state has %d bin keys, scheme uses %d bins", binKeys.Bins(), st.Params.Bins)
	}
	rsaKey, err := blindrsa.ParsePrivateKey(st.RSAKeyDER)
	if err != nil {
		return nil, fmt.Errorf("core: restoring RSA key: %w", err)
	}
	o := &Owner{
		params:  st.Params,
		binKeys: binKeys,
		rsaKey:  rsaKey,
		docKeys: make(map[string][]byte, len(st.DocKeys)),
		users:   make(map[string]*blindrsa.PublicKey, len(st.Users)),
		epoch:   st.Epoch,
	}
	for id, k := range st.DocKeys {
		o.docKeys[id] = append([]byte(nil), k...)
	}
	for id, der := range st.Users {
		pub, err := blindrsa.ParsePublicKey(der)
		if err != nil {
			return nil, fmt.Errorf("core: restoring user %q: %w", id, err)
		}
		o.users[id] = pub
	}
	o.randomWords = append([]string(nil), st.RandomWords...)
	o.randomTrapdoors = make([]*bitindex.Vector, len(o.randomWords))
	o.randomAll = bitindex.NewOnes(o.params.R)
	for i, w := range o.randomWords {
		o.randomTrapdoors[i] = o.keywordIndex(w)
		o.randomAll.AndInto(o.randomTrapdoors[i])
	}
	if len(st.Dictionary) > 0 {
		o.RegisterDictionary(st.Dictionary)
	}
	return o, nil
}

// Epoch returns the current key epoch. Trapdoor material is valid for
// exactly one epoch; a user holding keys from an older epoch builds queries
// that match nothing against re-indexed documents, so clients compare
// epochs and refresh (the paper's trapdoor expiration realized as an
// explicit counter).
func (o *Owner) Epoch() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// RegisterDictionary records the indexable keyword universe, enabling the
// vector-mode trapdoor service (Section 4.2's alternative: "the data owner
// can send trapdoor of each keywords in corresponding bins ... the latter
// method relieves the user of computing the trapdoors"). Calling it again
// replaces the dictionary.
func (o *Owner) RegisterDictionary(words []string) {
	byBin := make(map[int][]string)
	for _, w := range words {
		b := bins.GetBin(w, o.params.Bins)
		byBin[b] = append(byBin[b], w)
	}
	o.mu.Lock()
	o.binDict = byBin
	o.mu.Unlock()
}

// TrapdoorVectors answers a vector-mode trapdoor request: the precomputed
// index vector of every dictionary keyword in the requested bins. Compared
// to TrapdoorKeys this costs the owner one HMAC per keyword and more
// bandwidth (the communication/computation trade-off the paper notes), but
// the bin secret itself never leaves the owner. Requires RegisterDictionary.
func (o *Owner) TrapdoorVectors(binIDs []int) (map[string]*bitindex.Vector, error) {
	o.mu.Lock()
	dict := o.binDict
	o.mu.Unlock()
	if dict == nil {
		return nil, fmt.Errorf("core: vector-mode trapdoors need a registered dictionary")
	}
	out := make(map[string]*bitindex.Vector)
	for _, b := range binIDs {
		if b < 0 || b >= o.params.Bins {
			return nil, fmt.Errorf("core: bin %d out of range [0,%d)", b, o.params.Bins)
		}
		for _, w := range dict[b] {
			out[w] = o.keywordIndex(w)
		}
	}
	return out, nil
}
