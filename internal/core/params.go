// Package core implements the privacy-preserving ranked multi-keyword search
// scheme of Örencik & Savaş (PAIS 2012): the data owner's index and trapdoor
// generation (Section 4.1–4.2), the cloud server's oblivious ranked search
// (Sections 4.3 and 5, Algorithm 1), the user's query generation with
// randomization (Section 6), and the blinded document-retrieval protocol
// (Section 4.4).
package core

import (
	"fmt"

	"mkse/internal/rank"
)

// Params fixes every tunable of the scheme. The zero value is not usable;
// start from DefaultParams.
type Params struct {
	// R is the searchable index size in bits (the paper: 448 bits / 56
	// bytes). Every document index level and every query index is R bits.
	R int
	// D is the digit width of the GF(2^d)→GF(2) reduction (the paper: 6),
	// so the raw HMAC output is l = R·D bits (2688 bits / 336 bytes).
	D int
	// Bins is δ, the number of trapdoor bins keywords hash into. It must be
	// small enough that every bin holds ≥ ϖ dictionary words (obfuscation)
	// yet large enough that one bin key unlocks only a sliver of the
	// dictionary.
	Bins int
	// U is the number of random (non-dictionary) keywords folded into every
	// document index; V ≤ U of them are folded into each query. The paper
	// fixes U = 60, V = 30 (U = 2V maximizes the number of V-subsets).
	U, V int
	// Levels holds the ascending term-frequency thresholds of the η ranking
	// levels (Section 5). A single level {1} disables ranking: every match
	// has rank 1.
	Levels rank.Levels
	// RSABits is the data owner's modulus size for key transport, blinding
	// and signatures (the paper: 1024).
	RSABits int
}

// DefaultParams returns the paper's implementation parameters: r = 448,
// d = 6, δ = 250 bins, U = 60, V = 30, ranking disabled (η = 1), 1024-bit
// RSA.
func DefaultParams() Params {
	return Params{
		R:       448,
		D:       6,
		Bins:    250,
		U:       60,
		V:       30,
		Levels:  rank.Levels{1},
		RSABits: 1024,
	}
}

// WithLevels returns a copy of p using the given ranking thresholds, e.g.
// rank.Levels{1, 5, 10} for the paper's η = 3 example.
func (p Params) WithLevels(l rank.Levels) Params {
	p.Levels = l
	return p
}

// Eta returns the number of ranking levels η.
func (p Params) Eta() int { return len(p.Levels) }

// Equal reports whether two parameter sets describe the same scheme —
// every scalar matches and the ranking thresholds are identical. Replication
// uses it to refuse bootstrapping a follower whose parameters differ from
// the primary's checkpoint.
func (p Params) Equal(o Params) bool {
	if p.R != o.R || p.D != o.D || p.Bins != o.Bins || p.U != o.U || p.V != o.V || p.RSABits != o.RSABits {
		return false
	}
	if len(p.Levels) != len(o.Levels) {
		return false
	}
	for i, th := range p.Levels {
		if o.Levels[i] != th {
			return false
		}
	}
	return true
}

// HMACBytes returns the byte length l/8 of the raw keyword HMAC expansion.
func (p Params) HMACBytes() int { return (p.R*p.D + 7) / 8 }

// IndexBytes returns the wire size in bytes of one r-bit index.
func (p Params) IndexBytes() int { return (p.R + 7) / 8 }

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.R <= 0 {
		return fmt.Errorf("core: R must be positive, got %d", p.R)
	}
	if p.D <= 0 || p.D > 32 {
		return fmt.Errorf("core: D must be in [1,32], got %d", p.D)
	}
	if p.Bins <= 0 {
		return fmt.Errorf("core: Bins must be positive, got %d", p.Bins)
	}
	if p.U < 0 || p.V < 0 || p.V > p.U {
		return fmt.Errorf("core: need 0 <= V <= U, got U=%d V=%d", p.U, p.V)
	}
	if err := p.Levels.Validate(); err != nil {
		return err
	}
	if p.RSABits < 512 {
		return fmt.Errorf("core: RSABits must be >= 512, got %d", p.RSABits)
	}
	return nil
}
