// Package harness starts partitioned mkse clusters on loopback listeners
// for tests, benchmarks and experiment sweeps: N cloud daemons each owning
// one partition of the doc-ID hash map, optionally durably backed and
// optionally trailed by read replicas streaming each primary's write-ahead
// log, with one call to tear the whole topology down again. The shared
// single-endpoint helpers (ServeOn, TempEngine) live here too, so every
// suite builds its daemons the same way.
package harness

import (
	"fmt"
	"log/slog"
	"net"
	"os"
	"time"

	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/durable"
	"mkse/internal/service"
	"mkse/internal/trace"
)

// Options shapes a StartCluster topology.
type Options struct {
	// Durable backs every daemon with a write-ahead-logged engine in a
	// throwaway temp directory (fsync disabled). Memory-only otherwise.
	Durable bool
	// Followers starts this many read replicas per partition, each
	// streaming its primary's log. Requires Durable.
	Followers int
	// CacheMB enables each primary's query-result cache with this byte
	// budget in MiB (0 = no cache).
	CacheMB int
	// Heartbeat is the replication heartbeat interval (0 = 20ms, brisk
	// enough for tests).
	Heartbeat time.Duration
	// Logger, when set, is handed to every daemon.
	Logger *slog.Logger
	// Trace enables request tracing on every daemon before it starts
	// serving (enabling it later would race the request path). Daemons
	// never head-sample on their own (rate 0) — they only continue traces
	// a coordinator propagates, so an untraced benchmark loop stays
	// span-free while a forced-sample search assembles the full tree.
	Trace bool
}

// Node is one running cloud daemon: its service, listener and address, and —
// when durably backed — its engine, temp directory and (on a follower) its
// replication stream.
type Node struct {
	Svc  *service.CloudService
	L    net.Listener
	Addr string

	Eng *durable.Engine  // nil on a memory-only node
	Dir string           // temp dir backing Eng; "" on a memory-only node
	Rep *service.Replica // nil except on followers
}

// Cluster is a running partitioned topology: Primaries[i] owns partition i,
// Followers[i] are its read replicas.
type Cluster struct {
	P         int
	Params    core.Params
	Primaries []*Node
	Followers [][]*Node
}

// StartCluster starts a P-partition cluster on loopback listeners. Every
// daemon — primaries and followers alike — is stamped with its partition
// identity i/P, so coordinators can verify the topology and primaries
// enforce document ownership. Callers must Close the cluster.
func StartCluster(p core.Params, partitions int, opts Options) (*Cluster, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("harness: need at least 1 partition, got %d", partitions)
	}
	if opts.Followers > 0 && !opts.Durable {
		return nil, fmt.Errorf("harness: followers require a durable cluster")
	}
	hb := opts.Heartbeat
	if hb == 0 {
		hb = 20 * time.Millisecond
	}
	c := &Cluster{P: partitions, Params: p, Followers: make([][]*Node, partitions)}
	for i := 0; i < partitions; i++ {
		node, err := startNode(p, i, partitions, opts, hb, "")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("harness: partition %d: %w", i, err)
		}
		c.Primaries = append(c.Primaries, node)
		for f := 0; f < opts.Followers; f++ {
			fnode, err := startNode(p, i, partitions, opts, hb, node.Addr)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("harness: partition %d follower %d: %w", i, f, err)
			}
			c.Followers[i] = append(c.Followers[i], fnode)
		}
	}
	return c, nil
}

// startNode starts one daemon for partition i of p. A non-empty primaryAddr
// makes it a follower of that address.
func startNode(params core.Params, i, p int, opts Options, hb time.Duration, primaryAddr string) (*Node, error) {
	node := &Node{}
	svc := &service.CloudService{
		Partition:      i,
		Partitions:     p,
		HeartbeatEvery: hb,
		Logger:         opts.Logger,
	}
	if opts.CacheMB > 0 {
		svc.Cache = service.NewResultCache(int64(opts.CacheMB) << 20)
	}
	if opts.Durable {
		eng, dir, err := TempEngine(params)
		if err != nil {
			return nil, err
		}
		node.Eng, node.Dir = eng, dir
		svc.Server = eng.Server()
		svc.WAL = eng
		svc.Eng = eng
		if primaryAddr == "" {
			svc.Store = eng
		} else {
			node.Rep = service.StartReplica(eng, primaryAddr, opts.Logger)
			svc.Replica = node.Rep
		}
	} else {
		srv, err := core.NewServer(params)
		if err != nil {
			return nil, err
		}
		svc.Server = srv
	}
	if opts.Trace {
		svc.EnableTracing(trace.New(fmt.Sprintf("cloud-p%d", i), 0, trace.NewBuffer(64)))
	}
	node.Svc = svc
	l, addr, err := ServeOn(svc.Serve)
	if err != nil {
		node.close()
		return nil, err
	}
	node.L, node.Addr = l, addr
	return node, nil
}

// Config returns the topology a coordinator routes by: each partition's
// primary address, with its followers listed as read replicas.
func (c *Cluster) Config() cluster.Config {
	cfg := cluster.Config{Partitions: make([]cluster.Partition, c.P)}
	for i, n := range c.Primaries {
		cfg.Partitions[i].Primary = n.Addr
		for _, f := range c.Followers[i] {
			cfg.Partitions[i].Replicas = append(cfg.Partitions[i].Replicas, f.Addr)
		}
	}
	return cfg
}

// Addrs returns the primary addresses in partition order.
func (c *Cluster) Addrs() []string {
	addrs := make([]string, len(c.Primaries))
	for i, n := range c.Primaries {
		addrs[i] = n.Addr
	}
	return addrs
}

// WaitConverged blocks until every follower has replayed its primary's log
// to the primary's current position, or the timeout elapses.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i, fs := range c.Followers {
		if len(fs) == 0 {
			continue
		}
		target := c.Primaries[i].Eng.Position()
		for _, f := range fs {
			for f.Eng.Position() < target {
				if time.Now().After(deadline) {
					return fmt.Errorf("harness: partition %d follower stuck at %d of %d",
						i, f.Eng.Position(), target)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	return nil
}

// Close tears the whole topology down: listeners closed, replication
// streams stopped, engines crashed, temp directories removed. Safe on a
// partially started cluster.
func (c *Cluster) Close() {
	for i := len(c.Followers) - 1; i >= 0; i-- {
		for _, f := range c.Followers[i] {
			f.close()
		}
	}
	for _, n := range c.Primaries {
		n.close()
	}
}

func (n *Node) close() {
	if n.L != nil {
		n.L.Close()
	}
	if n.Rep != nil {
		n.Rep.Close()
	}
	if n.Eng != nil {
		n.Eng.Crash()
	}
	if n.Dir != "" {
		os.RemoveAll(n.Dir)
	}
}

// StartOwner serves an owner daemon on a loopback listener.
func StartOwner(owner *core.Owner) (net.Listener, string, error) {
	return ServeOn((&service.OwnerService{Owner: owner}).Serve)
}

// ServeOn starts a service loop on a fresh loopback listener and returns
// the listener and its address.
func ServeOn(serve func(net.Listener) error) (net.Listener, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() { _ = serve(l) }()
	return l, l.Addr().String(), nil
}

// TempEngine opens a throwaway durable engine in a fresh temp directory
// with fsync disabled — the standard disposable storage node for tests and
// sweeps. The caller removes the directory.
func TempEngine(p core.Params) (*durable.Engine, string, error) {
	dir, err := os.MkdirTemp("", "mkse-harness-")
	if err != nil {
		return nil, "", err
	}
	eng, err := durable.Open(dir, p, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	return eng, dir, nil
}
