package blindrsa

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// Key generation is the slowest operation in this package's tests; share one
// key pair across tests that do not need a fresh key.
var (
	testKeyOnce sync.Once
	testKey     *PrivateKey
)

func sharedKey(t testing.TB) *PrivateKey {
	testKeyOnce.Do(func() {
		k, err := GenerateKey(DefaultModulusBits)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(256); err == nil {
		t.Error("GenerateKey(256) succeeded, want error")
	}
}

func TestEncryptDecryptInt(t *testing.T) {
	k := sharedKey(t)
	for _, m := range []int64{1, 2, 42, 1 << 40} {
		msg := big.NewInt(m)
		c, err := k.EncryptInt(msg)
		if err != nil {
			t.Fatalf("encrypt %d: %v", m, err)
		}
		p, err := k.DecryptInt(c)
		if err != nil {
			t.Fatalf("decrypt %d: %v", m, err)
		}
		if p.Cmp(msg) != 0 {
			t.Errorf("round trip of %d gave %v", m, p)
		}
	}
}

func TestEncryptIntRejectsOutOfRange(t *testing.T) {
	k := sharedKey(t)
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(-1),
		new(big.Int).Set(k.N),
		new(big.Int).Add(k.N, big.NewInt(1)),
	}
	for _, m := range cases {
		if _, err := k.EncryptInt(m); err == nil {
			t.Errorf("EncryptInt(%v) succeeded, want error", m)
		}
	}
}

func TestEncryptDecryptKeyBytes(t *testing.T) {
	k := sharedKey(t)
	sk := make([]byte, 32)
	if _, err := rand.Read(sk); err != nil {
		t.Fatal(err)
	}
	c, err := k.EncryptKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != k.ModulusBytes() {
		t.Errorf("ciphertext length %d, want %d", len(c), k.ModulusBytes())
	}
	got, err := k.DecryptKey(c, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sk) {
		t.Error("DecryptKey did not recover the key")
	}
}

func TestEncryptKeyRejectsDegenerate(t *testing.T) {
	k := sharedKey(t)
	if _, err := k.EncryptKey(nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := k.EncryptKey(make([]byte, 32)); err == nil {
		t.Error("all-zero key accepted")
	}
	if _, err := k.EncryptKey(make([]byte, k.ModulusBytes())); err == nil {
		t.Error("modulus-sized key accepted")
	}
}

// The core protocol property (Section 4.4): blinding then raw decryption then
// unblinding recovers exactly the plaintext, for any plaintext and blinding
// factor.
func TestBlindDecryptionRoundTrip(t *testing.T) {
	k := sharedKey(t)
	for trial := 0; trial < 20; trial++ {
		sk, err := rand.Int(rand.Reader, k.N)
		if err != nil {
			t.Fatal(err)
		}
		if sk.Sign() == 0 {
			continue
		}
		y, err := k.EncryptInt(sk)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBlinder(k.Public(), nil)
		if err != nil {
			t.Fatal(err)
		}
		z, err := b.Blind(y)
		if err != nil {
			t.Fatal(err)
		}
		zbar, err := k.DecryptInt(z) // owner side
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Unblind(zbar)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(sk) != 0 {
			t.Fatalf("trial %d: blind decryption returned wrong plaintext", trial)
		}
	}
}

// The blinded ciphertext must differ from the raw ciphertext (otherwise the
// owner learns which document key it decrypts), and two blindings of the same
// ciphertext must differ from each other (unlinkability).
func TestBlindingHidesCiphertext(t *testing.T) {
	k := sharedKey(t)
	y, err := k.EncryptInt(big.NewInt(123456789))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := NewBlinder(k.Public(), nil)
	b2, _ := NewBlinder(k.Public(), nil)
	z1, _ := b1.Blind(y)
	z2, _ := b2.Blind(y)
	if z1.Cmp(y) == 0 {
		t.Error("blinded ciphertext equals raw ciphertext")
	}
	if z1.Cmp(z2) == 0 {
		t.Error("two independent blindings coincide")
	}
}

func TestBlindRejectsOutOfRange(t *testing.T) {
	k := sharedKey(t)
	b, _ := NewBlinder(k.Public(), nil)
	if _, err := b.Blind(new(big.Int).Set(k.N)); err == nil {
		t.Error("Blind accepted y >= N")
	}
	if _, err := b.Unblind(new(big.Int).Neg(big.NewInt(1))); err == nil {
		t.Error("Unblind accepted negative input")
	}
}

func TestBlindDecryptKeyHelper(t *testing.T) {
	k := sharedKey(t)
	sk := make([]byte, 32)
	if _, err := rand.Read(sk); err != nil {
		t.Fatal(err)
	}
	sk[0] |= 1 // ensure nonzero
	encKey, err := k.PublicKey.EncryptKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	ownerCalls := 0
	got, err := BlindDecryptKey(k.Public(), encKey, 32, func(z *big.Int) (*big.Int, error) {
		ownerCalls++
		// The oracle must never see the raw ciphertext.
		if z.Cmp(new(big.Int).SetBytes(encKey)) == 0 {
			t.Error("owner oracle received the unblinded ciphertext")
		}
		return k.DecryptInt(z)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ownerCalls != 1 {
		t.Errorf("owner called %d times, want 1", ownerCalls)
	}
	if !bytes.Equal(got, sk) {
		t.Error("BlindDecryptKey did not recover the key")
	}
}

// Property-based check of the multiplicative blinding identity for arbitrary
// plaintext values: Unblind(Decrypt(Blind(Encrypt(m)))) == m.
func TestBlindingQuick(t *testing.T) {
	k := sharedKey(t)
	f := func(seed [24]byte) bool {
		m := new(big.Int).SetBytes(seed[:])
		if m.Sign() == 0 {
			return true
		}
		y, err := k.EncryptInt(m)
		if err != nil {
			return false
		}
		b, err := NewBlinder(k.Public(), nil)
		if err != nil {
			return false
		}
		z, err := b.Blind(y)
		if err != nil {
			return false
		}
		zbar, err := k.DecryptInt(z)
		if err != nil {
			return false
		}
		got, err := b.Unblind(zbar)
		return err == nil && got.Cmp(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSignVerify(t *testing.T) {
	k := sharedKey(t)
	msg := []byte("trapdoor request: bins 3, 17, 99")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.PublicKey.Verify(msg, sig); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	k := sharedKey(t)
	msg := []byte("retrieve document 42")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	msg[0] ^= 1
	if err := k.PublicKey.Verify(msg, sig); err == nil {
		t.Error("tampered message accepted")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	k := sharedKey(t)
	msg := []byte("retrieve document 42")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	sig[len(sig)/2] ^= 0xff
	if err := k.PublicKey.Verify(msg, sig); err == nil {
		t.Error("tampered signature accepted")
	}
}

// Non-impersonation (Theorem 4): a signature produced under one user's key
// must not verify under another user's public key.
func TestVerifyRejectsForeignKey(t *testing.T) {
	k1 := sharedKey(t)
	k2, err := GenerateKey(DefaultModulusBits)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("I am user 1")
	sig, err := k1.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.PublicKey.Verify(msg, sig); err == nil {
		t.Error("signature verified under a foreign public key")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	k := sharedKey(t)
	restored, err := ParsePrivateKey(k.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if restored.N.Cmp(k.N) != 0 || restored.D.Cmp(k.D) != 0 || restored.E.Cmp(k.E) != 0 {
		t.Error("private key round trip lost components")
	}
	// The restored key must decrypt what the original encrypted.
	c, err := k.EncryptInt(big.NewInt(424242))
	if err != nil {
		t.Fatal(err)
	}
	m, err := restored.DecryptInt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 424242 {
		t.Error("restored key decrypts incorrectly")
	}
	// And sign verifiably.
	sig, err := restored.Sign([]byte("post-restore"))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.PublicKey.Verify([]byte("post-restore"), sig); err != nil {
		t.Errorf("signature by restored key rejected: %v", err)
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	k := sharedKey(t)
	restored, err := ParsePublicKey(k.PublicKey.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if restored.N.Cmp(k.N) != 0 || restored.E.Cmp(k.E) != 0 {
		t.Error("public key round trip lost components")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParsePrivateKey([]byte("not der")); err == nil {
		t.Error("garbage private key accepted")
	}
	if _, err := ParsePublicKey([]byte{0x30, 0x00}); err == nil {
		t.Error("garbage public key accepted")
	}
}

func TestModulusBytes(t *testing.T) {
	k := sharedKey(t)
	if k.ModulusBytes() != 128 {
		t.Errorf("ModulusBytes = %d for 1024-bit key, want 128", k.ModulusBytes())
	}
}

func BenchmarkBlind(b *testing.B) {
	k := sharedKey(b)
	y, _ := k.EncryptInt(big.NewInt(987654321))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl, err := NewBlinder(k.Public(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bl.Blind(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOwnerDecrypt(b *testing.B) {
	k := sharedKey(b)
	y, _ := k.EncryptInt(big.NewInt(987654321))
	bl, _ := NewBlinder(k.Public(), nil)
	z, _ := bl.Blind(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DecryptInt(z); err != nil {
			b.Fatal(err)
		}
	}
}
