// Package blindrsa implements the RSA machinery of the MKS document-retrieval
// protocol (Örencik & Savaş, Section 4.4) and the user-authentication
// signatures of the non-impersonation property (Theorem 4).
//
// The data owner encrypts each per-document symmetric key sk as a *textbook*
// RSA ciphertext y = sk^e mod N and stores y at the cloud server. A user who
// retrieves a document blinds y with a random factor c —
//
//	z = c^e · y mod N
//
// — sends z to the owner, receives z̄ = z^d mod N, and unblinds
//
//	sk = z̄ · c^(−1) mod N.
//
// The owner decrypts without learning which document's key it handled;
// Chaum-style blinding requires the raw (unpadded, multiplicatively
// homomorphic) RSA primitive, which is why this package performs modular
// exponentiation directly with math/big instead of using crypto/rsa's padded
// modes. This is faithful to the paper; the blinded values are random-looking
// group elements, and sk itself is a uniformly random AES key, so the usual
// structured-plaintext objections to textbook RSA do not apply here.
package blindrsa

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DefaultModulusBits matches the paper's choice of a 1024-bit modulus
// ("N is chosen as a 1024-bit integer", Section 8.1). Deployments should use
// 2048+; every function here accepts any size.
const DefaultModulusBits = 1024

// PublicKey is an RSA public key (N, e).
type PublicKey struct {
	N *big.Int
	E *big.Int
}

// PrivateKey is an RSA key pair. It retains the stdlib key for signing and
// exposes N, e, d for the raw blind-decryption arithmetic.
type PrivateKey struct {
	PublicKey
	D *big.Int

	std *rsa.PrivateKey
}

// GenerateKey creates an RSA key pair with the given modulus size in bits,
// drawing primes from crypto/rand (the paper: "the product of two randomly
// chosen 512-bit prime numbers").
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < 512 {
		return nil, fmt.Errorf("blindrsa: modulus size %d too small (min 512)", bits)
	}
	std, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("blindrsa: key generation: %w", err)
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: std.N, E: big.NewInt(int64(std.E))},
		D:         new(big.Int).Set(std.D),
		std:       std,
	}, nil
}

// Public returns the public half of the key.
func (k *PrivateKey) Public() *PublicKey { return &k.PublicKey }

// ModulusBytes returns the modulus size in bytes; fixed-width encodings of
// group elements use this length (Table 1 counts logN-bit messages).
func (p *PublicKey) ModulusBytes() int { return (p.N.BitLen() + 7) / 8 }

var (
	// ErrMessageTooLong is returned when a plaintext does not fit below N.
	ErrMessageTooLong = errors.New("blindrsa: message representative out of range")
	// ErrVerification is returned when a signature does not verify.
	ErrVerification = errors.New("blindrsa: signature verification failed")
)

// EncryptInt computes the textbook RSA encryption m^e mod N. The plaintext
// must satisfy 0 < m < N.
func (p *PublicKey) EncryptInt(m *big.Int) (*big.Int, error) {
	if m.Sign() <= 0 || m.Cmp(p.N) >= 0 {
		return nil, ErrMessageTooLong
	}
	return new(big.Int).Exp(m, p.E, p.N), nil
}

// DecryptInt computes the raw RSA decryption c^d mod N. This is also the
// owner-side operation of the blind-decryption protocol: the owner applies it
// to a blinded ciphertext without being able to tell what it is decrypting.
func (k *PrivateKey) DecryptInt(c *big.Int) (*big.Int, error) {
	if c.Sign() < 0 || c.Cmp(k.N) >= 0 {
		return nil, ErrMessageTooLong
	}
	return new(big.Int).Exp(c, k.D, k.N), nil
}

// EncryptKey encrypts a symmetric key (an arbitrary byte string shorter than
// the modulus) and returns a fixed-width ciphertext of ModulusBytes() bytes.
func (p *PublicKey) EncryptKey(sk []byte) ([]byte, error) {
	if len(sk) == 0 || len(sk) >= p.ModulusBytes() {
		return nil, ErrMessageTooLong
	}
	m := new(big.Int).SetBytes(sk)
	if m.Sign() == 0 {
		// An all-zero key encodes to the integer 0, which textbook RSA maps
		// to itself; reject it rather than leak it.
		return nil, ErrMessageTooLong
	}
	c, err := p.EncryptInt(m)
	if err != nil {
		return nil, err
	}
	return c.FillBytes(make([]byte, p.ModulusBytes())), nil
}

// DecryptKey inverts EncryptKey, returning the symmetric key left-padded to
// keyLen bytes.
func (k *PrivateKey) DecryptKey(ciphertext []byte, keyLen int) ([]byte, error) {
	c := new(big.Int).SetBytes(ciphertext)
	m, err := k.DecryptInt(c)
	if err != nil {
		return nil, err
	}
	if (m.BitLen()+7)/8 > keyLen {
		return nil, fmt.Errorf("blindrsa: decrypted key longer than %d bytes", keyLen)
	}
	return m.FillBytes(make([]byte, keyLen)), nil
}

// Blinder holds the per-retrieval blinding state on the user side: the random
// factor c and its modular inverse. A Blinder must be used for exactly one
// ciphertext and then discarded; reusing c across retrievals would let the
// owner link them.
type Blinder struct {
	pub  *PublicKey
	c    *big.Int
	cInv *big.Int
}

// NewBlinder draws a fresh blinding factor c that is invertible modulo N.
func NewBlinder(pub *PublicKey, rng io.Reader) (*Blinder, error) {
	if rng == nil {
		rng = rand.Reader
	}
	for i := 0; i < 64; i++ {
		c, err := rand.Int(rng, pub.N)
		if err != nil {
			return nil, fmt.Errorf("blindrsa: drawing blinding factor: %w", err)
		}
		if c.Sign() == 0 {
			continue
		}
		cInv := new(big.Int).ModInverse(c, pub.N)
		if cInv == nil {
			// c shares a factor with N — astronomically unlikely for a real
			// modulus (it would factor N), but handle it.
			continue
		}
		return &Blinder{pub: pub, c: c, cInv: cInv}, nil
	}
	return nil, errors.New("blindrsa: could not find invertible blinding factor")
}

// Blind maps the ciphertext y to z = c^e · y mod N. The result is what the
// user transmits to the data owner (Table 1: logN bits).
func (b *Blinder) Blind(y *big.Int) (*big.Int, error) {
	if y.Sign() < 0 || y.Cmp(b.pub.N) >= 0 {
		return nil, ErrMessageTooLong
	}
	ce := new(big.Int).Exp(b.c, b.pub.E, b.pub.N)
	ce.Mul(ce, y)
	return ce.Mod(ce, b.pub.N), nil
}

// Unblind maps the owner's reply z̄ = z^d back to the plaintext:
// sk = z̄ · c^(−1) mod N.
func (b *Blinder) Unblind(zbar *big.Int) (*big.Int, error) {
	if zbar.Sign() < 0 || zbar.Cmp(b.pub.N) >= 0 {
		return nil, ErrMessageTooLong
	}
	m := new(big.Int).Mul(zbar, b.cInv)
	return m.Mod(m, b.pub.N), nil
}

// BlindDecryptKey runs the user's side of the full retrieval protocol against
// an abstract owner oracle: blind y, submit it via decrypt (the network call
// to the data owner), unblind, and decode a keyLen-byte symmetric key.
func BlindDecryptKey(pub *PublicKey, encKey []byte, keyLen int, decrypt func(z *big.Int) (*big.Int, error)) ([]byte, error) {
	y := new(big.Int).SetBytes(encKey)
	b, err := NewBlinder(pub, nil)
	if err != nil {
		return nil, err
	}
	z, err := b.Blind(y)
	if err != nil {
		return nil, err
	}
	zbar, err := decrypt(z)
	if err != nil {
		return nil, err
	}
	m, err := b.Unblind(zbar)
	if err != nil {
		return nil, err
	}
	if (m.BitLen()+7)/8 > keyLen {
		return nil, fmt.Errorf("blindrsa: unblinded key longer than %d bytes", keyLen)
	}
	return m.FillBytes(make([]byte, keyLen)), nil
}

// Marshal serializes the public key in PKCS#1 DER form.
func (p *PublicKey) Marshal() []byte {
	return x509.MarshalPKCS1PublicKey(&rsa.PublicKey{N: p.N, E: int(p.E.Int64())})
}

// ParsePublicKey restores a public key serialized by PublicKey.Marshal.
func ParsePublicKey(der []byte) (*PublicKey, error) {
	std, err := x509.ParsePKCS1PublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("blindrsa: parsing public key: %w", err)
	}
	return &PublicKey{N: std.N, E: big.NewInt(int64(std.E))}, nil
}

// Marshal serializes the private key in PKCS#1 DER form for persistence.
func (k *PrivateKey) Marshal() []byte {
	return x509.MarshalPKCS1PrivateKey(k.std)
}

// ParsePrivateKey restores a private key serialized by Marshal.
func ParsePrivateKey(der []byte) (*PrivateKey, error) {
	std, err := x509.ParsePKCS1PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("blindrsa: parsing private key: %w", err)
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: std.N, E: big.NewInt(int64(std.E))},
		D:         new(big.Int).Set(std.D),
		std:       std,
	}, nil
}

// Sign produces an RSASSA-PKCS1-v1.5 signature over SHA-256(msg). Every
// user→owner message in the protocol is signed (Section 4.2: "In order to
// avoid impersonation, the user signs his messages").
func (k *PrivateKey) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, k.std, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("blindrsa: signing: %w", err)
	}
	return sig, nil
}

// Verify checks an RSASSA-PKCS1-v1.5 signature over SHA-256(msg).
func (p *PublicKey) Verify(msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	std := &rsa.PublicKey{N: p.N, E: int(p.E.Int64())}
	if err := rsa.VerifyPKCS1v15(std, crypto.SHA256, digest[:], sig); err != nil {
		return ErrVerification
	}
	return nil
}
