// Package corpus generates the synthetic document collections used in the
// paper's evaluation and provides light text utilities for indexing real
// documents.
//
// The paper evaluates on "a synthetic database ... created by assigning
// random keywords with random term frequencies for each document" (Section
// 8.1) and, for the ranking study (Section 5), on a controlled collection of
// 1000 equal-length files where exactly 20 documents contain all queried
// keywords with term frequencies uniform in [1, 15]. Both generators are
// reproduced here with deterministic seeding so every experiment is
// repeatable.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Document is a plaintext document together with its extracted keyword
// statistics. TermFreqs maps each keyword to its term frequency (the number
// of times it appears), the quantity the ranking levels of Section 5 are
// built from.
type Document struct {
	ID        string
	TermFreqs map[string]int
	Content   []byte
}

// Keywords returns the document's keywords in sorted order.
func (d *Document) Keywords() []string {
	out := make([]string, 0, len(d.TermFreqs))
	for w := range d.TermFreqs {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Dictionary returns n distinct synthetic keywords. The paper's attack
// analysis (Section 4.1) works with "approximately 25000 commonly used
// keywords in English"; only the cardinality matters for the scheme, so we
// synthesize tokens deterministically.
func Dictionary(n int) []string {
	if n <= 0 {
		panic(fmt.Sprintf("corpus: invalid dictionary size %d", n))
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("kw%05d", i)
	}
	return out
}

// Config drives the synthetic generator.
type Config struct {
	NumDocs        int      // number of documents
	KeywordsPerDoc int      // genuine keywords per document
	Dictionary     []string // keyword universe to draw from
	MaxTermFreq    int      // term frequencies drawn uniformly from [1, MaxTermFreq]
	Zipf           bool     // if set, keyword popularity follows a Zipf law instead of uniform
	ContentWords   int      // if > 0, synthesize Content with this many filler words
	Seed           int64    // RNG seed; same seed ⇒ same corpus
}

// Generate builds a synthetic corpus per the configuration. Each document
// receives KeywordsPerDoc distinct keywords; with Zipf set, low-index
// dictionary words are proportionally more popular (s = 1.1), modelling
// natural keyword skew; otherwise keywords are uniform.
func Generate(cfg Config) ([]*Document, error) {
	var docs []*Document
	if cfg.NumDocs > 0 {
		docs = make([]*Document, 0, cfg.NumDocs)
	}
	if err := GenerateStream(cfg, func(d *Document) error {
		docs = append(docs, d)
		return nil
	}); err != nil {
		return nil, err
	}
	return docs, nil
}

// GenerateStream is Generate without the accumulated slice: each document is
// handed to fn as soon as it is built and never retained by the generator,
// so a million-document corpus can be indexed and discarded in O(1) memory.
// The stream is identical to Generate's output for the same Config, document
// for document. If fn returns an error, generation stops and the error is
// returned.
func GenerateStream(cfg Config, fn func(*Document) error) error {
	if cfg.NumDocs <= 0 {
		return fmt.Errorf("corpus: NumDocs must be positive, got %d", cfg.NumDocs)
	}
	if cfg.KeywordsPerDoc <= 0 {
		return fmt.Errorf("corpus: KeywordsPerDoc must be positive, got %d", cfg.KeywordsPerDoc)
	}
	if len(cfg.Dictionary) < cfg.KeywordsPerDoc {
		return fmt.Errorf("corpus: dictionary of %d words cannot fill %d keywords per document",
			len(cfg.Dictionary), cfg.KeywordsPerDoc)
	}
	if cfg.MaxTermFreq <= 0 {
		cfg.MaxTermFreq = 15 // the ranking study's upper bound
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Zipf {
		zipf = rand.NewZipf(rng, 1.1, 1, uint64(len(cfg.Dictionary)-1))
	}
	for i := 0; i < cfg.NumDocs; i++ {
		tf := make(map[string]int, cfg.KeywordsPerDoc)
		for len(tf) < cfg.KeywordsPerDoc {
			var w string
			if zipf != nil {
				w = cfg.Dictionary[zipf.Uint64()]
			} else {
				w = cfg.Dictionary[rng.Intn(len(cfg.Dictionary))]
			}
			if _, dup := tf[w]; !dup {
				tf[w] = 1 + rng.Intn(cfg.MaxTermFreq)
			}
		}
		doc := &Document{ID: fmt.Sprintf("doc-%05d", i), TermFreqs: tf}
		if cfg.ContentWords > 0 {
			doc.Content = synthesizeContent(rng, tf, cfg.ContentWords)
		}
		if err := fn(doc); err != nil {
			return err
		}
	}
	return nil
}

// synthesizeContent produces document text that actually realizes the term
// frequencies: each keyword appears exactly tf times, padded with filler.
// Keywords are laid out in sorted order before the shuffle so the bytes are
// a pure function of the RNG state, not of map iteration order — the same
// seed must yield the same corpus, content included.
func synthesizeContent(rng *rand.Rand, tf map[string]int, fillerWords int) []byte {
	words := make([]string, 0, fillerWords+len(tf)*4)
	kws := make([]string, 0, len(tf))
	for w := range tf {
		kws = append(kws, w)
	}
	sort.Strings(kws)
	for _, w := range kws {
		for i := 0; i < tf[w]; i++ {
			words = append(words, w)
		}
	}
	for i := 0; i < fillerWords; i++ {
		words = append(words, fmt.Sprintf("filler%04d", rng.Intn(10000)))
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	return []byte(strings.Join(words, " "))
}

// RankingStudy reproduces the Section 5 evaluation setup: M files of equal
// length; ft documents contain each of the query keywords individually;
// nAllMatch of them contain *all* query keywords; term frequencies of query
// keywords in the all-match documents are uniform in [1, maxTF]. It returns
// the corpus, the query keywords, and the IDs of the all-match documents.
//
// Paper values: M = 1000, 3 query keywords, ft = 200, nAllMatch = 20,
// maxTF = 15.
func RankingStudy(m, queryKeywords, ft, nAllMatch, maxTF int, seed int64) ([]*Document, []string, []string, error) {
	if nAllMatch > ft || ft > m {
		return nil, nil, nil, fmt.Errorf("corpus: need nAllMatch <= ft <= m, got %d, %d, %d", nAllMatch, ft, m)
	}
	if queryKeywords <= 0 || maxTF <= 0 {
		return nil, nil, nil, fmt.Errorf("corpus: queryKeywords and maxTF must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	query := make([]string, queryKeywords)
	for i := range query {
		query[i] = fmt.Sprintf("query-kw-%d", i)
	}

	docs := make([]*Document, m)
	filler := Dictionary(400)
	for i := range docs {
		tf := make(map[string]int)
		// Background keywords so documents are not degenerate.
		for len(tf) < 10 {
			w := filler[rng.Intn(len(filler))]
			if _, dup := tf[w]; !dup {
				tf[w] = 1 + rng.Intn(maxTF)
			}
		}
		docs[i] = &Document{ID: fmt.Sprintf("doc-%05d", i), TermFreqs: tf}
	}

	// First nAllMatch documents contain every query keyword.
	allMatch := make([]string, nAllMatch)
	for i := 0; i < nAllMatch; i++ {
		for _, q := range query {
			docs[i].TermFreqs[q] = 1 + rng.Intn(maxTF)
		}
		allMatch[i] = docs[i].ID
	}
	// Each query keyword appears in ft documents total: the nAllMatch shared
	// ones plus ft-nAllMatch additional distinct documents per keyword.
	next := nAllMatch
	for _, q := range query {
		for c := nAllMatch; c < ft; c++ {
			if next >= m {
				return nil, nil, nil, fmt.Errorf("corpus: m=%d too small for ft=%d with %d keywords", m, ft, queryKeywords)
			}
			docs[next].TermFreqs[q] = 1 + rng.Intn(maxTF)
			next++
		}
	}
	return docs, query, allMatch, nil
}

// RandomKeywords returns n random strings that are guaranteed not to collide
// with Dictionary outputs — the "U random keywords that do not exist in the
// dictionary (i.e. they are simply random strings)" of Section 6.
func RandomKeywords(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	const letters = "abcdefghijklmnopqrstuvwxyz"
	out := make([]string, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; {
		var b strings.Builder
		b.WriteString("rnd-")
		for j := 0; j < 12; j++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		w := b.String()
		if !seen[w] {
			seen[w] = true
			out[i] = w
			i++
		}
	}
	return out
}

// Tokenize extracts lower-cased alphanumeric tokens of length >= minLen from
// text and returns their term frequencies. It is the minimal analyzer needed
// to index real documents with the scheme; full linguistic processing is out
// of the paper's scope ("analyzing a document for finding the keywords in it
// is out of the scope of this work", Section 8.1).
func Tokenize(text string, minLen int) map[string]int {
	tf := make(map[string]int)
	var b strings.Builder
	flush := func() {
		if b.Len() >= minLen {
			tf[b.String()]++
		}
		b.Reset()
	}
	for _, r := range strings.ToLower(text) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return tf
}

// TopKeywords returns the up-to-n highest-frequency keywords of a frequency
// map, ties broken lexicographically — handy for capping keywords per
// document (the FAR analysis of Section 6.1 assumes < 40 keywords/doc).
func TopKeywords(tf map[string]int, n int) []string {
	type kv struct {
		w string
		f int
	}
	all := make([]kv, 0, len(tf))
	for w, f := range tf {
		all = append(all, kv{w, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}
