package corpus

import (
	"fmt"
	"strings"
	"testing"
)

func TestDictionaryDistinct(t *testing.T) {
	d := Dictionary(25000)
	if len(d) != 25000 {
		t.Fatalf("len = %d, want 25000", len(d))
	}
	seen := make(map[string]bool, len(d))
	for _, w := range d {
		if seen[w] {
			t.Fatalf("duplicate dictionary word %q", w)
		}
		seen[w] = true
	}
}

func TestDictionaryPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dictionary(0) did not panic")
		}
	}()
	Dictionary(0)
}

func TestGenerateBasic(t *testing.T) {
	docs, err := Generate(Config{
		NumDocs:        100,
		KeywordsPerDoc: 20,
		Dictionary:     Dictionary(4000),
		MaxTermFreq:    15,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 100 {
		t.Fatalf("got %d docs, want 100", len(docs))
	}
	ids := make(map[string]bool)
	for _, d := range docs {
		if ids[d.ID] {
			t.Fatalf("duplicate doc ID %q", d.ID)
		}
		ids[d.ID] = true
		if len(d.TermFreqs) != 20 {
			t.Errorf("doc %s has %d keywords, want 20", d.ID, len(d.TermFreqs))
		}
		for w, f := range d.TermFreqs {
			if f < 1 || f > 15 {
				t.Errorf("doc %s keyword %q has tf %d outside [1,15]", d.ID, w, f)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{NumDocs: 20, KeywordsPerDoc: 5, Dictionary: Dictionary(100), Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].TermFreqs) != len(b[i].TermFreqs) {
			t.Fatal("same seed produced different corpora")
		}
		for w, f := range a[i].TermFreqs {
			if b[i].TermFreqs[w] != f {
				t.Fatal("same seed produced different term frequencies")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	dict := Dictionary(10)
	cases := []Config{
		{NumDocs: 0, KeywordsPerDoc: 1, Dictionary: dict},
		{NumDocs: 1, KeywordsPerDoc: 0, Dictionary: dict},
		{NumDocs: 1, KeywordsPerDoc: 11, Dictionary: dict},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if err := GenerateStream(cfg, func(*Document) error { return nil }); err == nil {
			t.Errorf("case %d: GenerateStream accepted invalid config", i)
		}
	}
}

// The stream must be the batch corpus document for document — the million-doc
// sweep relies on streamed indexing being the same corpus Generate would
// materialize, Zipf and content synthesis included.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range []Config{
		{NumDocs: 40, KeywordsPerDoc: 6, Dictionary: Dictionary(200), Seed: 11},
		{NumDocs: 40, KeywordsPerDoc: 6, Dictionary: Dictionary(200), Zipf: true, Seed: 11},
		{NumDocs: 15, KeywordsPerDoc: 4, Dictionary: Dictionary(50), ContentWords: 30, Seed: 3},
	} {
		batch, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		err = GenerateStream(cfg, func(d *Document) error {
			want := batch[i]
			if d.ID != want.ID || len(d.TermFreqs) != len(want.TermFreqs) {
				t.Fatalf("doc %d: stream %q/%d keywords, batch %q/%d", i, d.ID, len(d.TermFreqs), want.ID, len(want.TermFreqs))
			}
			for w, f := range want.TermFreqs {
				if d.TermFreqs[w] != f {
					t.Fatalf("doc %d keyword %q: stream tf %d, batch tf %d", i, w, d.TermFreqs[w], f)
				}
			}
			if string(d.Content) != string(want.Content) {
				t.Fatalf("doc %d: streamed content differs from batch", i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != len(batch) {
			t.Fatalf("stream produced %d documents, batch %d", i, len(batch))
		}
	}
}

// A callback error must stop the stream immediately and surface unchanged.
func TestGenerateStreamStopsOnError(t *testing.T) {
	sentinel := fmt.Errorf("stop here")
	calls := 0
	err := GenerateStream(Config{NumDocs: 100, KeywordsPerDoc: 2, Dictionary: Dictionary(20), Seed: 1},
		func(*Document) error {
			calls++
			if calls == 3 {
				return sentinel
			}
			return nil
		})
	if err != sentinel {
		t.Fatalf("got error %v, want the callback's", err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times after erroring on call 3", calls)
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	dict := Dictionary(1000)
	docs, err := Generate(Config{
		NumDocs: 500, KeywordsPerDoc: 10, Dictionary: dict, Zipf: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	lowIdx, highIdx := 0, 0
	for _, d := range docs {
		for w := range d.TermFreqs {
			var idx int
			if _, err := fscan(w, &idx); err != nil {
				t.Fatalf("unexpected keyword %q", w)
			}
			if idx < 100 {
				lowIdx++
			} else if idx >= 900 {
				highIdx++
			}
		}
	}
	if lowIdx <= highIdx*2 {
		t.Errorf("Zipf skew not visible: low-index count %d, high-index count %d", lowIdx, highIdx)
	}
}

// fscan parses the numeric suffix of a kwNNNNN dictionary word.
func fscan(w string, idx *int) (int, error) {
	n := 0
	for _, c := range strings.TrimPrefix(w, "kw") {
		if c < '0' || c > '9' {
			return 0, errParse
		}
		n = n*10 + int(c-'0')
	}
	*idx = n
	return 1, nil
}

var errParse = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "parse error" }

func TestGenerateContentRealizesTermFreqs(t *testing.T) {
	docs, err := Generate(Config{
		NumDocs: 5, KeywordsPerDoc: 8, Dictionary: Dictionary(50),
		ContentWords: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if len(d.Content) == 0 {
			t.Fatalf("doc %s has no content", d.ID)
		}
		got := Tokenize(string(d.Content), 1)
		for w, f := range d.TermFreqs {
			if got[w] != f {
				t.Errorf("doc %s: content has %d occurrences of %q, want %d", d.ID, got[w], w, f)
			}
		}
	}
}

func TestRankingStudySetup(t *testing.T) {
	docs, query, allMatch, err := RankingStudy(1000, 3, 200, 20, 15, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1000 || len(query) != 3 || len(allMatch) != 20 {
		t.Fatalf("sizes: %d docs, %d query kw, %d all-match", len(docs), len(query), len(allMatch))
	}
	// Each query keyword must appear in exactly ft = 200 documents.
	for _, q := range query {
		count := 0
		for _, d := range docs {
			if _, ok := d.TermFreqs[q]; ok {
				count++
			}
		}
		if count != 200 {
			t.Errorf("keyword %q appears in %d docs, want 200", q, count)
		}
	}
	// Exactly the first 20 documents contain all query keywords.
	full := 0
	for _, d := range docs {
		has := 0
		for _, q := range query {
			if _, ok := d.TermFreqs[q]; ok {
				has++
			}
		}
		if has == len(query) {
			full++
		}
	}
	if full != 20 {
		t.Errorf("%d docs contain all query keywords, want 20", full)
	}
	// TFs of query keywords within bounds.
	for _, id := range allMatch {
		var doc *Document
		for _, d := range docs {
			if d.ID == id {
				doc = d
				break
			}
		}
		if doc == nil {
			t.Fatalf("all-match doc %s not found", id)
		}
		for _, q := range query {
			f := doc.TermFreqs[q]
			if f < 1 || f > 15 {
				t.Errorf("doc %s keyword %q tf %d outside [1,15]", id, q, f)
			}
		}
	}
}

func TestRankingStudyValidation(t *testing.T) {
	if _, _, _, err := RankingStudy(100, 3, 200, 20, 15, 1); err == nil {
		t.Error("ft > m accepted")
	}
	if _, _, _, err := RankingStudy(1000, 3, 200, 300, 15, 1); err == nil {
		t.Error("nAllMatch > ft accepted")
	}
	if _, _, _, err := RankingStudy(1000, 0, 200, 20, 15, 1); err == nil {
		t.Error("zero query keywords accepted")
	}
	// m too small to give each keyword its own ft-nAllMatch extra docs.
	if _, _, _, err := RankingStudy(300, 3, 200, 20, 15, 1); err == nil {
		t.Error("insufficient m accepted")
	}
}

func TestRandomKeywordsDistinctAndDisjoint(t *testing.T) {
	rnd := RandomKeywords(60, 5)
	if len(rnd) != 60 {
		t.Fatalf("got %d random keywords, want 60", len(rnd))
	}
	seen := make(map[string]bool)
	for _, w := range rnd {
		if seen[w] {
			t.Fatalf("duplicate random keyword %q", w)
		}
		seen[w] = true
		if !strings.HasPrefix(w, "rnd-") {
			t.Errorf("random keyword %q could collide with dictionary namespace", w)
		}
	}
}

func TestRandomKeywordsDeterministic(t *testing.T) {
	a := RandomKeywords(10, 99)
	b := RandomKeywords(10, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different random keywords")
		}
	}
}

func TestTokenize(t *testing.T) {
	tf := Tokenize("The cloud, the CLOUD of a server!", 3)
	if tf["cloud"] != 2 {
		t.Errorf("cloud tf = %d, want 2", tf["cloud"])
	}
	if tf["the"] != 2 {
		t.Errorf("the tf = %d, want 2", tf["the"])
	}
	if tf["server"] != 1 {
		t.Errorf("server tf = %d, want 1", tf["server"])
	}
	for _, short := range []string{"of", "a"} {
		if _, ok := tf[short]; ok {
			t.Errorf("token %q shorter than minLen included", short)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if tf := Tokenize("", 3); len(tf) != 0 {
		t.Errorf("empty text produced %d tokens", len(tf))
	}
	if tf := Tokenize("!!! ??? ...", 1); len(tf) != 0 {
		t.Errorf("symbol-only text produced %d tokens", len(tf))
	}
}

func TestTopKeywords(t *testing.T) {
	tf := map[string]int{"a": 5, "b": 9, "c": 1, "d": 9}
	top := TopKeywords(tf, 2)
	if len(top) != 2 || top[0] != "b" || top[1] != "d" {
		t.Errorf("TopKeywords = %v, want [b d] (freq desc, lexicographic ties)", top)
	}
	if got := TopKeywords(tf, 99); len(got) != 4 {
		t.Errorf("over-asking returned %d keywords, want 4", len(got))
	}
}

func TestDocumentKeywordsSorted(t *testing.T) {
	d := &Document{TermFreqs: map[string]int{"zebra": 1, "apple": 2, "mango": 3}}
	ks := d.Keywords()
	if len(ks) != 3 || ks[0] != "apple" || ks[2] != "zebra" {
		t.Errorf("Keywords() = %v, want sorted", ks)
	}
}

func BenchmarkGenerate1000Docs(b *testing.B) {
	dict := Dictionary(4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{NumDocs: 1000, KeywordsPerDoc: 20, Dictionary: dict, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
