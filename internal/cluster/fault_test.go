// Fault-injection suite for the scatter-gather cluster: partitions stall and
// crash mid-search behind a fault-injecting TCP proxy, and the fat client
// must degrade exactly as specified — typed partial-result errors naming the
// dead partition, replica fallback serving the full result when the
// partition has a follower, and no data races when searchers hammer the
// cluster while documents churn.
package cluster_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/faultnet"
	"mkse/internal/harness"
	"mkse/internal/rank"
	"mkse/internal/service"
)

// faultCluster starts a P-partition cluster with a fault proxy in front of
// partition `faulted`'s primary, uploads a corpus routed by the map, and
// dials a fat client through the proxied topology.
type faultCluster struct {
	clu    *harness.Cluster
	proxy  *faultnet.Proxy
	cfg    cluster.Config
	owner  *core.Owner
	docs   []*corpus.Document
	client *service.Client
}

func startFaultCluster(t *testing.T, owner *core.Owner, partitions, faulted int, opts harness.Options, user string) *faultCluster {
	t.Helper()
	clu, err := harness.StartCluster(owner.Params(), partitions, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clu.Close)

	proxy, err := faultnet.Listen(clu.Primaries[faulted].Addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	cfg := clu.Config()
	cfg.Partitions[faulted].Primary = proxy.Addr()

	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 24, KeywordsPerDoc: 10, Dictionary: corpus.Dictionary(120),
		MaxTermFreq: 15, ContentWords: 10, Seed: 900 + int64(partitions),
	})
	if err != nil {
		t.Fatal(err)
	}
	var items []service.UploadItem
	for _, doc := range docs {
		si, enc, err := owner.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, service.UploadItem{Index: si, Doc: enc})
	}
	if err := service.UploadAllCluster(cfg, items); err != nil {
		t.Fatal(err)
	}

	ol, oaddr, err := harness.StartOwner(owner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ol.Close() })
	client, err := service.DialCluster(user, oaddr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	client.PartitionTimeout = 250 * time.Millisecond

	return &faultCluster{clu: clu, proxy: proxy, cfg: cfg, owner: owner, docs: docs, client: client}
}

// ownedBy returns a document the partition map assigns to the given partition.
func (f *faultCluster) ownedBy(t *testing.T, partition int) *corpus.Document {
	t.Helper()
	m := f.cfg.Map()
	for _, d := range f.docs {
		if m.Owner(d.ID) == partition {
			return d
		}
	}
	t.Fatalf("no document hashes to partition %d", partition)
	return nil
}

// A stalled partition — connection open, no byte moving — must burn only its
// bounded per-partition deadline, then yield the survivors' merged results
// alongside a typed partial error; after the stall lifts, the client redials
// and full service resumes with no intervention.
func TestStalledPartitionYieldsPartialResult(t *testing.T) {
	owner := propertyOwner(t, rank.Levels{1, 5, 10}, 201)
	f := startFaultCluster(t, owner, 2, 1, harness.Options{}, "stall-user")
	words := f.ownedBy(t, 0).Keywords()[:2]

	if _, err := f.client.Search(words, 5); err != nil {
		t.Fatalf("search through healthy proxy failed: %v", err)
	}

	f.proxy.Stall()
	start := time.Now()
	matches, err := f.client.Search(words, 5)
	elapsed := time.Since(start)
	var partial *cluster.PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("search against a stalled partition: got %v, want *cluster.PartialError", err)
	}
	if len(partial.Failures) != 1 || partial.Failures[0].Partition != 1 {
		t.Errorf("partial error blames %+v, want partition 1", partial.Failures)
	}
	if partial.Partitions != 2 {
		t.Errorf("partial error reports %d partitions, want 2", partial.Partitions)
	}
	if len(matches) == 0 {
		t.Error("no results from the surviving partition")
	}
	if elapsed > 5*time.Second {
		t.Errorf("stalled partition burned %v — the per-partition deadline is not bounding the fan-out", elapsed)
	}

	f.proxy.Resume()
	if _, err := f.client.Search(words, 5); err != nil {
		t.Errorf("search after stall lifted: %v, want recovery via redial", err)
	}
}

// A severed partition — crashed host, connections cut — must be named, by
// index and address, in the typed error returned alongside the survivors'
// results, for searches and batched searches alike.
func TestSeveredPartitionNamedInError(t *testing.T) {
	owner := propertyOwner(t, rank.Levels{1, 5, 10}, 202)
	f := startFaultCluster(t, owner, 3, 2, harness.Options{}, "sever-user")
	words := f.ownedBy(t, 0).Keywords()[:2]

	f.proxy.Sever()
	matches, err := f.client.Search(words, 0)
	var partial *cluster.PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("search against a severed partition: got %v, want *cluster.PartialError", err)
	}
	fail := partial.Failures[0]
	if fail.Partition != 2 || fail.Addr != f.proxy.Addr() {
		t.Errorf("failure names partition %d at %s, want 2 at %s", fail.Partition, fail.Addr, f.proxy.Addr())
	}
	if len(matches) == 0 {
		t.Error("no results from the two surviving partitions")
	}

	batch, err := f.client.SearchBatch([][]string{words, f.ownedBy(t, 1).Keywords()[:1]}, 5)
	if !errors.As(err, &partial) {
		t.Fatalf("batch search against a severed partition: got %v, want *cluster.PartialError", err)
	}
	if len(batch) != 2 {
		t.Errorf("batch returned %d result sets, want 2 (partial)", len(batch))
	}
}

// When the dead partition has a read replica, the fan-out must fall back to
// it and return the complete merged result with no error at all — the
// failure is invisible to the caller.
func TestReplicaFallbackServesFullResult(t *testing.T) {
	owner := propertyOwner(t, rank.Levels{1, 5, 10}, 203)
	f := startFaultCluster(t, owner, 2, 1, harness.Options{Durable: true, Followers: 1}, "fallback-user")
	if err := f.clu.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Target a document owned by the partition about to die: only the
	// replica can produce it.
	target := f.ownedBy(t, 1)
	f.proxy.Sever()
	matches, err := f.client.Search(target.Keywords()[:2], 0)
	if err != nil {
		t.Fatalf("search with replica fallback returned %v, want nil (failure should be invisible)", err)
	}
	found := false
	for _, m := range matches {
		if m.DocID == target.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("dead partition's document %s missing — replica fallback did not serve it", target.ID)
	}
}

// Race hammer: concurrent fat clients search every partition while documents
// churn through routed uploads and deletes. Run under -race in CI; the
// assertions here are only that nothing errors or deadlocks.
func TestClusterConcurrentSearchAndChurn(t *testing.T) {
	owner := propertyOwner(t, rank.Levels{1, 5, 10}, 204)
	clu, err := harness.StartCluster(owner.Params(), 3, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	cfg := clu.Config()

	docs, err := corpus.Generate(corpus.Config{
		NumDocs: 40, KeywordsPerDoc: 10, Dictionary: corpus.Dictionary(150),
		MaxTermFreq: 15, ContentWords: 10, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]service.UploadItem, len(docs))
	for i, doc := range docs {
		si, enc, err := owner.Prepare(doc)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = service.UploadItem{Index: si, Doc: enc}
	}
	// The first half is stable ground for the searchers; the second half
	// churns.
	if err := service.UploadAllCluster(cfg, items[:20]); err != nil {
		t.Fatal(err)
	}
	churn := items[20:]
	churnIDs := make([]string, len(churn))
	for i, it := range churn {
		churnIDs[i] = it.Index.DocID
	}

	ol, oaddr, err := harness.StartOwner(owner)
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for s := 0; s < 3; s++ {
		client, err := service.DialCluster(fmt.Sprintf("hammer-%d", s), oaddr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		wg.Add(1)
		go func(c *service.Client, s int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				words := docs[(s*7+i)%20].Keywords()[:2]
				if _, err := c.Search(words, 5); err != nil {
					errCh <- fmt.Errorf("searcher %d iteration %d: %w", s, i, err)
					return
				}
			}
		}(client, s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := service.UploadAllCluster(cfg, churn); err != nil {
				errCh <- fmt.Errorf("churn upload %d: %w", i, err)
				return
			}
			if err := service.DeleteAllCluster(cfg, churnIDs); err != nil {
				errCh <- fmt.Errorf("churn delete %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
