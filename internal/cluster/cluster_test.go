package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"

	"mkse/internal/protocol"
)

// The inline FNV-1a constants freeze the ownership function; this pins them
// to the standard library's implementation so they can never drift.
func TestOwnerMatchesStdlibFNV1a(t *testing.T) {
	ids := []string{"", "a", "doc-00001", "doc-99999", "contract-acme", "Ω-unicode-id"}
	for _, p := range []int{2, 3, 5, 16} {
		m := Map{Partitions: p}
		for _, id := range ids {
			h := fnv.New64a()
			h.Write([]byte(id))
			want := int(h.Sum64() % uint64(p))
			if got := m.Owner(id); got != want {
				t.Errorf("Owner(%q) with P=%d = %d, want %d (stdlib FNV-1a)", id, p, got, want)
			}
		}
	}
}

func TestOwnerExactlyOneStablePartition(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 7} {
		a, b := Map{Partitions: p}, Map{Partitions: p}
		for i := 0; i < 2000; i++ {
			id := fmt.Sprintf("doc-%05d", i)
			own := a.Owner(id)
			if own < 0 || own >= p {
				t.Fatalf("Owner(%q) with P=%d = %d, out of range", id, p, own)
			}
			// A fresh Map instance — a restarted daemon, a different
			// coordinator — must assign identically.
			if again := b.Owner(id); again != own {
				t.Fatalf("Owner(%q) unstable across instances: %d then %d", id, own, again)
			}
		}
	}
}

func TestOwnerFewerThanTwoPartitions(t *testing.T) {
	for _, p := range []int{-1, 0, 1} {
		if got := (Map{Partitions: p}).Owner("anything"); got != 0 {
			t.Errorf("Owner with P=%d = %d, want 0", p, got)
		}
	}
}

func TestOwnerDistributionRoughlyBalanced(t *testing.T) {
	const p, n = 4, 10000
	m := Map{Partitions: p}
	counts := make([]int, p)
	for i := 0; i < n; i++ {
		counts[m.Owner(fmt.Sprintf("doc-%05d", i))]++
	}
	for i, c := range counts {
		if c < n/p/2 || c > n/p*2 {
			t.Errorf("partition %d owns %d of %d docs — hash badly skewed: %v", i, c, n, counts)
		}
	}
}

func TestParseTargets(t *testing.T) {
	cfg, err := ParseTargets("h1:7002, h2:7002/r1:7003/r2:7004 ,h3:7002")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.P() != 3 {
		t.Fatalf("P() = %d, want 3", cfg.P())
	}
	if cfg.Partitions[0].Primary != "h1:7002" || len(cfg.Partitions[0].Replicas) != 0 {
		t.Errorf("partition 0 mangled: %+v", cfg.Partitions[0])
	}
	if cfg.Partitions[1].Primary != "h2:7002" ||
		!slices.Equal(cfg.Partitions[1].Replicas, []string{"r1:7003", "r2:7004"}) {
		t.Errorf("partition 1 mangled: %+v", cfg.Partitions[1])
	}
	// String renders back into the flag syntax and re-parses identically.
	again, err := ParseTargets(cfg.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, again) {
		t.Errorf("String/ParseTargets round trip mangled: %q -> %+v", cfg.String(), again)
	}
}

func TestParseTargetsRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "h1,,h2", "h1,h2/", "h1, ,h2", "/r1"} {
		if _, err := ParseTargets(s); err == nil {
			t.Errorf("ParseTargets(%q) accepted, want error", s)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config validated")
	}
	bad := Config{Partitions: []Partition{{Primary: "h1"}, {}}}
	if err := bad.Validate(); err == nil {
		t.Error("config with empty primary validated")
	}
}

// MergeWire against the obvious reference: pool everything, sort globally,
// cut at τ. Because the partitions are disjoint and each applies its own
// local τ-cut first, the two must agree exactly, metadata included.
func TestMergeWireMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 300; trial++ {
		p := []int{1, 2, 3, 5}[rng.Intn(4)]
		n := rng.Intn(60)
		tau := rng.Intn(8) // 0 = unbounded
		all := make([]protocol.MatchWire, n)
		for i := range all {
			all[i] = protocol.MatchWire{
				DocID: fmt.Sprintf("doc-%03d", i),
				Rank:  rng.Intn(5) + 1,
				Meta:  []byte{byte(i), byte(trial)},
			}
		}
		m := Map{Partitions: p}
		parts := make([][]protocol.MatchWire, p)
		for _, mw := range all {
			pi := m.Owner(mw.DocID)
			parts[pi] = append(parts[pi], mw)
		}
		cmp := func(a, b protocol.MatchWire) int {
			if Less(a, b) {
				return -1
			}
			if Less(b, a) {
				return 1
			}
			return 0
		}
		for pi := range parts {
			slices.SortFunc(parts[pi], cmp)
			if tau > 0 && len(parts[pi]) > tau {
				parts[pi] = parts[pi][:tau] // each partition's local cut
			}
		}
		want := slices.Clone(all)
		slices.SortFunc(want, cmp)
		if tau > 0 && len(want) > tau {
			want = want[:tau]
		}
		if len(want) == 0 {
			want = nil // the no-match result is nil, never empty
		}
		got := MergeWire(parts, tau)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (P=%d n=%d tau=%d): merge diverged from global sort\n got %v\nwant %v",
				trial, p, n, tau, got, want)
		}
	}
}

func TestMergeWireEmptyIsNil(t *testing.T) {
	if got := MergeWire(nil, 5); got != nil {
		t.Errorf("MergeWire(nil) = %v, want nil", got)
	}
	if got := MergeWire([][]protocol.MatchWire{nil, {}}, 0); got != nil {
		t.Errorf("MergeWire(empty parts) = %v, want nil", got)
	}
}

func TestPartialErrorNamesPartitionsAndUnwraps(t *testing.T) {
	cause := errors.New("connection refused")
	pe := &PartialError{
		Partitions: 4,
		Failures: []PartitionFailure{
			{Partition: 1, Addr: "h2:7002", Err: cause},
			{Partition: 3, Addr: "h4:7002", Err: errors.New("timeout")},
		},
	}
	msg := pe.Error()
	for _, want := range []string{"2 of 4", "1 (h2:7002)", "3 (h4:7002)", "connection refused"} {
		if !strings.Contains(msg, want) {
			t.Errorf("PartialError message %q missing %q", msg, want)
		}
	}
	if !errors.Is(pe, cause) {
		t.Error("errors.Is does not reach the per-partition cause through Unwrap")
	}
}
