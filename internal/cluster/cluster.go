// Package cluster is the partitioning discipline of the scale-out
// deployment: a static doc-ID-hash map assigning every document to exactly
// one of P independent primaries, the global merge that folds per-partition
// top-τ results back into the (rank, docID) order a single-node scan would
// produce, and the typed partial-failure error a coordinator reports when a
// partition cannot be reached.
//
// The design keeps the scan local and the cut global: each partition runs
// the unchanged Algorithm-1 scan over its own corpus slice and applies its
// own top-τ cut, and because partitions are disjoint by document ID the
// global top-τ is always a subset of the union of per-partition top-τ sets —
// so merging the P sorted lists and cutting at τ is byte-identical to
// scanning the whole corpus on one node. No partition ever needs another's
// rows, and the coordinator never re-ranks; it only interleaves.
package cluster

import (
	"errors"
	"fmt"
	"strings"

	"mkse/internal/protocol"
)

// Map is the static partition map: a pure function from document ID to
// owning partition. It is deliberately stateless — ownership derives from an
// FNV-1a hash of the ID alone, so every party (owner uploads, client
// deletes, servers validating routes) computes the same assignment with no
// coordination, and the assignment is stable across restarts by
// construction.
type Map struct {
	Partitions int
}

// FNV-1a 64-bit constants; the hash is spelled out rather than taken from
// hash/fnv so the ownership function is visibly frozen — changing it would
// silently reassign every stored document.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Owner returns the 0-based partition that owns docID. Every document ID is
// owned by exactly one partition; a map with fewer than two partitions owns
// everything at partition 0.
func (m Map) Owner(docID string) int {
	if m.Partitions <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(docID); i++ {
		h ^= uint64(docID[i])
		h *= fnvPrime64
	}
	return int(h % uint64(m.Partitions))
}

// Partition is one partition's address set: the primary that owns the
// partition's corpus slice, plus any read replicas a coordinator may fall
// back to when the primary is unreachable.
type Partition struct {
	Primary  string
	Replicas []string
}

// Config is the static cluster topology a coordinator routes by: partition
// i's addresses at index i. The partition count is the length.
type Config struct {
	Partitions []Partition
}

// P returns the partition count.
func (c Config) P() int { return len(c.Partitions) }

// Map returns the doc-ID ownership map for this topology.
func (c Config) Map() Map { return Map{Partitions: len(c.Partitions)} }

// Validate rejects topologies that cannot route: no partitions, or a
// partition with an empty primary address.
func (c Config) Validate() error {
	if len(c.Partitions) == 0 {
		return errors.New("cluster: no partitions configured")
	}
	for i, p := range c.Partitions {
		if p.Primary == "" {
			return fmt.Errorf("cluster: partition %d has no primary address", i)
		}
	}
	return nil
}

// ParseTargets parses the -cluster flag syntax: a comma-separated partition
// list, each element "primary[/replica[/replica...]]". Element order is
// partition order — element i must be the daemon started with -partition
// i/P, which the coordinator verifies against each server's reported
// identity at dial time.
func ParseTargets(s string) (Config, error) {
	var cfg Config
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Config{}, fmt.Errorf("cluster: empty partition element in %q", s)
		}
		addrs := strings.Split(part, "/")
		p := Partition{Primary: strings.TrimSpace(addrs[0])}
		for _, r := range addrs[1:] {
			r = strings.TrimSpace(r)
			if r == "" {
				return Config{}, fmt.Errorf("cluster: empty replica address in %q", part)
			}
			p.Replicas = append(p.Replicas, r)
		}
		cfg.Partitions = append(cfg.Partitions, p)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// String renders the topology back into the -cluster flag syntax.
func (c Config) String() string {
	parts := make([]string, len(c.Partitions))
	for i, p := range c.Partitions {
		parts[i] = strings.Join(append([]string{p.Primary}, p.Replicas...), "/")
	}
	return strings.Join(parts, ",")
}

// Less is the global result order: descending rank, ties broken by
// ascending document ID — exactly the order core.Server emits, restated
// here so the merge and the scan cannot drift apart.
func Less(a, b protocol.MatchWire) bool {
	if a.Rank != b.Rank {
		return a.Rank > b.Rank
	}
	return a.DocID < b.DocID
}

// MergeWire folds per-partition result lists — each already in (rank desc,
// docID asc) order with its local τ-cut applied — into the global order and
// applies the global τ-cut (tau <= 0 keeps everything). Because partitions
// hold disjoint document sets, the merged prefix is byte-identical to what
// a single node holding the whole corpus would return, metadata included.
// An empty merge returns nil, matching the single-node scan's no-match
// result.
func MergeWire(parts [][]protocol.MatchWire, tau int) []protocol.MatchWire {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	if tau > 0 && tau < total {
		total = tau
	}
	out := make([]protocol.MatchWire, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for pi := range parts {
			if idx[pi] >= len(parts[pi]) {
				continue
			}
			if best < 0 || Less(parts[pi][idx[pi]], parts[best][idx[best]]) {
				best = pi
			}
		}
		if best < 0 {
			break
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// PartitionFailure is one unreachable partition in a scatter-gather fan-out:
// which partition, the last address tried, and the underlying error.
type PartitionFailure struct {
	Partition int
	Addr      string
	Err       error
}

// PartialError reports that a scatter-gather request could not cover every
// partition: the named partitions (primary and any replicas) were
// unreachable or timed out, so the merged result — if the caller uses it —
// is missing their documents. It is a typed error so callers can
// distinguish "results are partial" from "the request failed" and decide
// which partitions to blame.
type PartialError struct {
	Partitions int // total partitions in the fan-out
	Failures   []PartitionFailure
}

// Error names every dead partition — the operator's first question.
func (e *PartialError) Error() string {
	names := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		names[i] = fmt.Sprintf("%d (%s): %v", f.Partition, f.Addr, f.Err)
	}
	return fmt.Sprintf("cluster: partial result: %d of %d partitions unavailable: %s",
		len(e.Failures), e.Partitions, strings.Join(names, "; "))
}

// Unwrap exposes the per-partition causes to errors.Is/As walks.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}
