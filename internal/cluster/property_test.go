// Property test for the scatter-gather cluster: across randomized corpora,
// partition counts, ranking depths and τ-cuts, a partitioned deployment must
// answer searches byte-identically to a single node holding the whole corpus
// — matches, ranks, metadata and the binary-comparison cost accounting all
// included. The comparison runs at the wire layer (the exact request/response
// structs the daemons gob-encode), driving the same MergeWire the fat client
// uses.
package cluster_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"

	"mkse/internal/bitindex"
	"mkse/internal/cluster"
	"mkse/internal/core"
	"mkse/internal/corpus"
	"mkse/internal/harness"
	"mkse/internal/protocol"
	"mkse/internal/rank"
	"mkse/internal/service"
)

// propertyOwner builds one data owner per ranking-depth configuration; key
// generation dominates test time, so trials share owners and randomize
// everything else (corpus, partition count, τ, queries).
func propertyOwner(t *testing.T, levels rank.Levels, seed int64) *core.Owner {
	t.Helper()
	p := core.DefaultParams().WithLevels(levels)
	p.Bins = 64
	owner, err := core.NewOwnerDeterministic(p, seed, seed+0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	return owner
}

// buildQuery is the user's query construction without per-user keys: AND the
// genuine trapdoors with a random V-subset of the enrollment decoys.
func buildQuery(owner *core.Owner, rts []*bitindex.Vector, rng *rand.Rand, words []string) []byte {
	p := owner.Params()
	q := bitindex.NewOnes(p.R)
	for _, w := range words {
		q.AndInto(owner.Trapdoor(w))
	}
	for _, i := range rng.Perm(p.U)[:p.V] {
		q.AndInto(rts[i])
	}
	b, err := q.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScatterGatherByteIdentical is the core correctness property: 100+
// randomized trials, each comparing a P-partition deployment's merged search
// results — and their total binary-comparison cost — against a single
// reference server holding the identical corpus.
func TestScatterGatherByteIdentical(t *testing.T) {
	configs := []rank.Levels{{1}, {1, 5, 10}, {1, 3, 5, 10, 15}}
	const trialsPerConfig = 35 // 105 trials total
	for ci, levels := range configs {
		owner := propertyOwner(t, levels, int64(1000+ci))
		rts := owner.RandomTrapdoors()
		params := owner.Params()
		rng := rand.New(rand.NewSource(int64(40 + ci)))
		for trial := 0; trial < trialsPerConfig; trial++ {
			partitions := []int{1, 2, 3, 5}[rng.Intn(4)]
			n := 20 + rng.Intn(61)
			tau := rng.Intn(8)
			name := fmt.Sprintf("eta%d/trial%02d-P%d-n%d-tau%d", len(levels), trial, partitions, n, tau)

			docs, err := corpus.Generate(corpus.Config{
				NumDocs: n, KeywordsPerDoc: 10, Dictionary: corpus.Dictionary(150),
				MaxTermFreq: 15, Seed: rng.Int63(),
			})
			if err != nil {
				t.Fatal(err)
			}
			indices, err := owner.BuildIndexes(docs, 0)
			if err != nil {
				t.Fatal(err)
			}

			ref, err := core.NewServer(params)
			if err != nil {
				t.Fatal(err)
			}
			refSvc := &service.CloudService{Server: ref}
			servers := make([]*core.Server, partitions)
			svcs := make([]*service.CloudService, partitions)
			for i := range servers {
				if servers[i], err = core.NewServer(params); err != nil {
					t.Fatal(err)
				}
				svcs[i] = &service.CloudService{Server: servers[i], Partition: i, Partitions: partitions}
			}
			m := cluster.Map{Partitions: partitions}
			payload := []byte("ciphertext")
			for i, doc := range docs {
				enc := &core.EncryptedDocument{ID: doc.ID, Ciphertext: payload, EncKey: payload}
				if err := ref.Upload(indices[i], enc); err != nil {
					t.Fatal(err)
				}
				if err := servers[m.Owner(doc.ID)].Upload(indices[i], enc); err != nil {
					t.Fatal(err)
				}
			}

			queries := make([][]byte, 3)
			for qi := range queries {
				kw := docs[rng.Intn(n)].Keywords()
				queries[qi] = buildQuery(owner, rts, rng, kw[:1+rng.Intn(2)])
			}

			for qi, q := range queries {
				refBefore := ref.Costs.BinaryComparisons.Load()
				want, err := refSvc.SearchWire(&protocol.SearchRequest{Query: q, TopK: tau})
				if err != nil {
					t.Fatal(err)
				}
				refCost := ref.Costs.BinaryComparisons.Load() - refBefore

				lists := make([][]protocol.MatchWire, partitions)
				var partCost int64
				for pi, svc := range svcs {
					before := servers[pi].Costs.BinaryComparisons.Load()
					resp, err := svc.SearchWire(&protocol.SearchRequest{Query: q, TopK: tau})
					if err != nil {
						t.Fatal(err)
					}
					partCost += servers[pi].Costs.BinaryComparisons.Load() - before
					lists[pi] = resp.Matches
				}
				merged := cluster.MergeWire(lists, tau)
				if got, wantB := gobBytes(t, merged), gobBytes(t, want.Matches); !bytes.Equal(got, wantB) {
					t.Fatalf("%s query %d: merged wire bytes diverge from single-node scan\n got  %d matches\n want %d matches",
						name, qi, len(merged), len(want.Matches))
				}
				if partCost != refCost {
					t.Fatalf("%s query %d: partitions did %d binary comparisons, single node %d — the scan is not work-preserving",
						name, qi, partCost, refCost)
				}
			}

			// The batch path must merge per-query exactly the same way.
			wantBatch, err := refSvc.SearchBatchWire(&protocol.SearchBatchRequest{Queries: queries, TopK: tau})
			if err != nil {
				t.Fatal(err)
			}
			partBatches := make([]*protocol.SearchBatchResponse, partitions)
			for pi, svc := range svcs {
				if partBatches[pi], err = svc.SearchBatchWire(&protocol.SearchBatchRequest{Queries: queries, TopK: tau}); err != nil {
					t.Fatal(err)
				}
			}
			for qi := range queries {
				lists := make([][]protocol.MatchWire, partitions)
				for pi := range partBatches {
					lists[pi] = partBatches[pi].Results[qi]
				}
				merged := cluster.MergeWire(lists, tau)
				if got, wantB := gobBytes(t, merged), gobBytes(t, wantBatch.Results[qi]); !bytes.Equal(got, wantB) {
					t.Fatalf("%s batch query %d: merged wire bytes diverge from single-node batch", name, qi)
				}
			}
		}
	}
}

// TestFatClientInvariantsOverTCP drives the real fat client through the
// harness: queries are randomized per client (each ANDs its own decoy
// subset), so two clients' results are not byte-comparable — instead this
// asserts the invariants the merge guarantees regardless of decoys: global
// (rank desc, docID asc) order, the τ-cut bound, routing of mutations, and
// that a document's genuine keywords find it.
func TestFatClientInvariantsOverTCP(t *testing.T) {
	owner := propertyOwner(t, rank.Levels{1, 5, 10}, 77)
	params := owner.Params()
	for _, partitions := range []int{2, 3} {
		clu, err := harness.StartCluster(params, partitions, harness.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer clu.Close()

		docs, err := corpus.Generate(corpus.Config{
			NumDocs: 30, KeywordsPerDoc: 10, Dictionary: corpus.Dictionary(150),
			MaxTermFreq: 15, ContentWords: 10, Seed: int64(500 + partitions),
		})
		if err != nil {
			t.Fatal(err)
		}
		var items []service.UploadItem
		for _, doc := range docs {
			si, enc, err := owner.Prepare(doc)
			if err != nil {
				t.Fatal(err)
			}
			items = append(items, service.UploadItem{Index: si, Doc: enc})
		}
		if err := service.UploadAllCluster(clu.Config(), items); err != nil {
			t.Fatal(err)
		}

		ol, oaddr, err := harness.StartOwner(owner)
		if err != nil {
			t.Fatal(err)
		}
		defer ol.Close()
		client, err := service.DialCluster(fmt.Sprintf("prop-%d", partitions), oaddr, clu.Config())
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()

		const tau = 7
		target := docs[4]
		matches, err := client.Search(target.Keywords()[:2], tau)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 || len(matches) > tau {
			t.Fatalf("P=%d: %d matches outside (0, τ=%d]", partitions, len(matches), tau)
		}
		found := false
		for i, mt := range matches {
			if mt.DocID == target.ID {
				found = true
			}
			if i > 0 && (mt.Rank > matches[i-1].Rank ||
				(mt.Rank == matches[i-1].Rank && mt.DocID < matches[i-1].DocID)) {
				t.Fatalf("P=%d: merged results out of global order at %d: %+v", partitions, i, matches)
			}
		}
		if !found {
			t.Errorf("P=%d: target %s missing from its own keywords' results", partitions, target.ID)
		}

		// A routed delete removes the document from exactly its owner.
		victim := docs[7].ID
		before := clu.Primaries[clu.Config().Map().Owner(victim)].Svc.Server.NumDocuments()
		if err := client.Delete(victim); err != nil {
			t.Fatal(err)
		}
		after := clu.Primaries[clu.Config().Map().Owner(victim)].Svc.Server.NumDocuments()
		if after != before-1 {
			t.Errorf("P=%d: owning partition went %d -> %d documents after delete, want -1", partitions, before, after)
		}
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.NumDocuments != len(docs)-1 || st.Partitions != partitions {
			t.Errorf("P=%d: aggregate stats %d docs/%d partitions, want %d/%d",
				partitions, st.NumDocuments, st.Partitions, len(docs)-1, partitions)
		}
	}
}
