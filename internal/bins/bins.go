// Package bins implements the keyword-binning half of the trapdoor protocol
// (Örencik & Savaş, Section 4.2). Keywords are assigned to δ bins by a public
// uniform hash (GetBin). The data owner keeps one secret HMAC key per bin; a
// user requests trapdoors by *bin ID* rather than by keyword, so the owner
// learns only which bins — each holding at least ϖ keywords — were touched,
// never the keyword itself.
package bins

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	mrand "math/rand"

	"mkse/internal/kdf"
)

// GetBin maps a keyword to a bin ID in {0, …, bins−1} using a public,
// unkeyed, uniformly distributed hash (SHA-256 truncated to 64 bits, reduced
// modulo the bin count). Every party — owner, user, even the adversary — can
// evaluate it; its role is load-balancing and obfuscation, not secrecy.
// It panics if bins <= 0.
func GetBin(word string, bins int) int {
	if bins <= 0 {
		panic(fmt.Sprintf("bins: invalid bin count %d", bins))
	}
	sum := sha256.Sum256([]byte(word))
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(bins))
}

// KeySet holds the data owner's per-bin secret HMAC keys. It is the secret
// material whose absence makes the brute-force attack of Section 4.1
// infeasible: without the bin key an adversary cannot evaluate the trapdoor
// function at all.
type KeySet struct {
	keys [][]byte
}

// NewKeySet draws fresh random 128-bit keys for the given number of bins
// using crypto/rand.
func NewKeySet(bins int) (*KeySet, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("bins: invalid bin count %d", bins)
	}
	ks := &KeySet{keys: make([][]byte, bins)}
	for i := range ks.keys {
		k := make([]byte, kdf.KeySize)
		if _, err := rand.Read(k); err != nil {
			return nil, fmt.Errorf("bins: generating key for bin %d: %w", i, err)
		}
		ks.keys[i] = k
	}
	return ks, nil
}

// NewSeededKeySet derives bin keys from a deterministic seed (math/rand).
// It exists so experiments are exactly reproducible run to run; production
// owners use NewKeySet's crypto/rand keys.
func NewSeededKeySet(bins int, seed int64) (*KeySet, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("bins: invalid bin count %d", bins)
	}
	rng := mrand.New(mrand.NewSource(seed))
	ks := &KeySet{keys: make([][]byte, bins)}
	for i := range ks.keys {
		k := make([]byte, kdf.KeySize)
		for j := range k {
			k[j] = byte(rng.Intn(256))
		}
		ks.keys[i] = k
	}
	return ks, nil
}

// NewKeySetFromKeys wraps externally supplied keys (e.g. keys received from
// the data owner in a trapdoor response, or restored from storage). The
// slice is retained; callers must not mutate it afterwards.
func NewKeySetFromKeys(keys [][]byte) (*KeySet, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("bins: empty key set")
	}
	for i, k := range keys {
		if len(k) == 0 {
			return nil, fmt.Errorf("bins: empty key for bin %d", i)
		}
	}
	return &KeySet{keys: keys}, nil
}

// Bins returns the number of bins δ.
func (ks *KeySet) Bins() int { return len(ks.keys) }

// Key returns the secret key of the given bin. It panics on an out-of-range
// bin ID.
func (ks *KeySet) Key(bin int) []byte {
	if bin < 0 || bin >= len(ks.keys) {
		panic(fmt.Sprintf("bins: bin %d out of range [0,%d)", bin, len(ks.keys)))
	}
	return ks.keys[bin]
}

// KeyFor returns the secret key governing the given keyword's bin.
func (ks *KeySet) KeyFor(word string) []byte {
	return ks.keys[GetBin(word, len(ks.keys))]
}

// KeysFor returns the deduplicated bin IDs and corresponding keys for a set
// of keywords, in first-seen order. This is exactly the owner's reply to a
// trapdoor request: "the secret keys of the bins requested for" (Section
// 4.2). If two query keywords share a bin only one (ID, key) pair is
// returned, matching the communication-cost note in Section 8.
func (ks *KeySet) KeysFor(words []string) (binIDs []int, keys [][]byte) {
	seen := make(map[int]bool, len(words))
	for _, w := range words {
		b := GetBin(w, len(ks.keys))
		if !seen[b] {
			seen[b] = true
			binIDs = append(binIDs, b)
			keys = append(keys, ks.keys[b])
		}
	}
	return binIDs, keys
}

// Subset returns a partial key set that contains keys only for the listed
// bins — the view an authorized user holds after a trapdoor exchange. Bins
// the user never asked about have nil keys; querying a keyword from such a
// bin is an error surfaced by PartialKeyFor.
func (ks *KeySet) Subset(binIDs []int) *KeySet {
	sub := &KeySet{keys: make([][]byte, len(ks.keys))}
	for _, b := range binIDs {
		if b >= 0 && b < len(ks.keys) {
			sub.keys[b] = ks.keys[b]
		}
	}
	return sub
}

// PartialKeyFor returns the key for the keyword's bin, or an error if this
// (partial) key set does not hold that bin's key.
func (ks *KeySet) PartialKeyFor(word string) ([]byte, error) {
	b := GetBin(word, len(ks.keys))
	if ks.keys[b] == nil {
		return nil, fmt.Errorf("bins: no trapdoor key for bin %d (keyword %q); request it from the data owner", b, word)
	}
	return ks.keys[b], nil
}

// SetKey installs the key for one bin, accumulating trapdoor material
// received from the data owner.
func (ks *KeySet) SetKey(bin int, key []byte) error {
	if bin < 0 || bin >= len(ks.keys) {
		return fmt.Errorf("bins: bin %d out of range [0,%d)", bin, len(ks.keys))
	}
	if len(key) == 0 {
		return fmt.Errorf("bins: empty key for bin %d", bin)
	}
	ks.keys[bin] = key
	return nil
}

// Merge copies every non-nil key from other into ks, accumulating trapdoor
// material across multiple exchanges with the owner. Bin counts must agree.
func (ks *KeySet) Merge(other *KeySet) error {
	if len(ks.keys) != len(other.keys) {
		return fmt.Errorf("bins: bin count mismatch %d != %d", len(ks.keys), len(other.keys))
	}
	for i, k := range other.keys {
		if k != nil {
			ks.keys[i] = k
		}
	}
	return nil
}

// EmptyKeySet returns a key set with the right bin count and no keys, the
// starting state of a fresh user.
func EmptyKeySet(bins int) (*KeySet, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("bins: invalid bin count %d", bins)
	}
	return &KeySet{keys: make([][]byte, bins)}, nil
}

// MinOccupancy distributes the given dictionary into bins and returns the
// size of the smallest bin. The paper requires every bin to hold at least ϖ
// keywords (the security parameter); deployments should check
// MinOccupancy(dict, δ) >= ϖ when choosing δ.
func MinOccupancy(dictionary []string, binCount int) int {
	if binCount <= 0 {
		panic(fmt.Sprintf("bins: invalid bin count %d", binCount))
	}
	counts := make([]int, binCount)
	for _, w := range dictionary {
		counts[GetBin(w, binCount)]++
	}
	min := counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
	}
	return min
}
