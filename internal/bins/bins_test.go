package bins

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestGetBinRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		b := GetBin(fmt.Sprintf("word%d", i), 64)
		if b < 0 || b >= 64 {
			t.Fatalf("GetBin out of range: %d", b)
		}
	}
}

func TestGetBinDeterministic(t *testing.T) {
	if GetBin("privacy", 128) != GetBin("privacy", 128) {
		t.Error("GetBin not deterministic")
	}
}

func TestGetBinPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for bins=0")
		}
	}()
	GetBin("x", 0)
}

// The paper requires GetBin to have (approximately) uniform distribution so
// that "each bin will have approximately equal number of items in it".
// Chi-square test over a 25000-word synthetic dictionary.
func TestGetBinUniformity(t *testing.T) {
	const words, binCount = 25000, 50
	counts := make([]int, binCount)
	for i := 0; i < words; i++ {
		counts[GetBin(fmt.Sprintf("kw-%d", i), binCount)]++
	}
	expected := float64(words) / binCount
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 49 degrees of freedom; 99.9th percentile ≈ 85. Far above that means the
	// hash is badly skewed.
	if chi2 > 95 {
		t.Errorf("chi-square = %.1f over %d bins, distribution too skewed", chi2, binCount)
	}
}

func TestNewKeySet(t *testing.T) {
	ks, err := NewKeySet(16)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Bins() != 16 {
		t.Errorf("Bins = %d, want 16", ks.Bins())
	}
	seen := make(map[string]bool)
	for i := 0; i < 16; i++ {
		k := ks.Key(i)
		if len(k) != 16 {
			t.Errorf("key %d has length %d, want 16", i, len(k))
		}
		if seen[string(k)] {
			t.Errorf("duplicate key for bin %d", i)
		}
		seen[string(k)] = true
	}
}

func TestNewKeySetRejectsBadCount(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := NewKeySet(n); err == nil {
			t.Errorf("NewKeySet(%d) succeeded", n)
		}
	}
}

func TestKeyForConsistency(t *testing.T) {
	ks, err := NewKeySet(8)
	if err != nil {
		t.Fatal(err)
	}
	w := "encrypted"
	if !bytes.Equal(ks.KeyFor(w), ks.Key(GetBin(w, 8))) {
		t.Error("KeyFor disagrees with Key(GetBin(...))")
	}
}

func TestKeysForDeduplicates(t *testing.T) {
	ks, err := NewKeySet(4)
	if err != nil {
		t.Fatal(err)
	}
	// With 4 bins and many words, duplicates are guaranteed.
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	ids, keys := ks.KeysFor(words)
	if len(ids) != len(keys) {
		t.Fatalf("ids/keys length mismatch: %d vs %d", len(ids), len(keys))
	}
	if len(ids) > 4 {
		t.Errorf("more distinct ids (%d) than bins (4)", len(ids))
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate bin id %d in reply", id)
		}
		seen[id] = true
	}
	// Each returned key matches its bin.
	for i, id := range ids {
		if !bytes.Equal(keys[i], ks.Key(id)) {
			t.Errorf("key %d does not match bin %d", i, id)
		}
	}
}

func TestSubsetAndPartialKeyFor(t *testing.T) {
	ks, err := NewKeySet(32)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"alpha", "beta"}
	ids, _ := ks.KeysFor(words)
	sub := ks.Subset(ids)

	for _, w := range words {
		k, err := sub.PartialKeyFor(w)
		if err != nil {
			t.Fatalf("PartialKeyFor(%q): %v", w, err)
		}
		if !bytes.Equal(k, ks.KeyFor(w)) {
			t.Errorf("subset key for %q differs from owner key", w)
		}
	}

	// A keyword from an unrequested bin should error (unless it collides).
	for i := 0; i < 1000; i++ {
		w := fmt.Sprintf("other-%d", i)
		requested := false
		for _, id := range ids {
			if GetBin(w, 32) == id {
				requested = true
			}
		}
		if !requested {
			if _, err := sub.PartialKeyFor(w); err == nil {
				t.Errorf("PartialKeyFor(%q) should fail: bin never requested", w)
			}
			return
		}
	}
	t.Skip("could not find keyword outside requested bins")
}

func TestSubsetIgnoresOutOfRangeBins(t *testing.T) {
	ks, err := NewKeySet(4)
	if err != nil {
		t.Fatal(err)
	}
	sub := ks.Subset([]int{-1, 99, 2})
	if sub.keys[2] == nil {
		t.Error("valid bin not copied")
	}
}

func TestMerge(t *testing.T) {
	ks, err := NewKeySet(16)
	if err != nil {
		t.Fatal(err)
	}
	user, err := EmptyKeySet(16)
	if err != nil {
		t.Fatal(err)
	}
	ids1, _ := ks.KeysFor([]string{"one"})
	ids2, _ := ks.KeysFor([]string{"two"})
	if err := user.Merge(ks.Subset(ids1)); err != nil {
		t.Fatal(err)
	}
	if err := user.Merge(ks.Subset(ids2)); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"one", "two"} {
		if _, err := user.PartialKeyFor(w); err != nil {
			t.Errorf("after merge, no key for %q: %v", w, err)
		}
	}
}

func TestMergeBinCountMismatch(t *testing.T) {
	a, _ := EmptyKeySet(4)
	b, _ := EmptyKeySet(8)
	if err := a.Merge(b); err == nil {
		t.Error("merge with mismatched bin counts succeeded")
	}
}

func TestNewSeededKeySetDeterministic(t *testing.T) {
	a, err := NewSeededKeySet(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeededKeySet(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !bytes.Equal(a.Key(i), b.Key(i)) {
			t.Fatalf("seed 42 produced different keys for bin %d", i)
		}
	}
	c, err := NewSeededKeySet(8, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Key(0), c.Key(0)) {
		t.Error("different seeds produced identical keys")
	}
	if _, err := NewSeededKeySet(0, 1); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestSetKey(t *testing.T) {
	ks, err := EmptyKeySet(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ks.SetKey(2, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ks.Key(2), []byte{1, 2}) {
		t.Error("SetKey did not store the key")
	}
	if err := ks.SetKey(-1, []byte{1}); err == nil {
		t.Error("negative bin accepted")
	}
	if err := ks.SetKey(4, []byte{1}); err == nil {
		t.Error("out-of-range bin accepted")
	}
	if err := ks.SetKey(1, nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestNewKeySetFromKeysValidation(t *testing.T) {
	if _, err := NewKeySetFromKeys(nil); err == nil {
		t.Error("empty key list accepted")
	}
	if _, err := NewKeySetFromKeys([][]byte{{1}, nil}); err == nil {
		t.Error("nil key accepted")
	}
	ks, err := NewKeySetFromKeys([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if ks.Bins() != 2 {
		t.Errorf("Bins = %d, want 2", ks.Bins())
	}
}

func TestKeyPanicsOutOfRange(t *testing.T) {
	ks, _ := NewKeySet(2)
	for _, b := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Key(%d) did not panic", b)
				}
			}()
			ks.Key(b)
		}()
	}
}

func TestMinOccupancy(t *testing.T) {
	dict := make([]string, 25000)
	for i := range dict {
		dict[i] = fmt.Sprintf("word-%d", i)
	}
	min := MinOccupancy(dict, 100)
	mean := 250.0
	// With uniform hashing the minimum of 100 bins over 25000 draws should be
	// within a few standard deviations of the mean (σ ≈ 15.7).
	if float64(min) < mean-6*math.Sqrt(mean) {
		t.Errorf("minimum occupancy %d suspiciously low (mean %.0f)", min, mean)
	}
}

// Property: GetBin with two different bin counts still lands in range, and
// stability under repetition.
func TestGetBinQuick(t *testing.T) {
	f := func(word string, n uint8) bool {
		binCount := int(n)%512 + 1
		b := GetBin(word, binCount)
		return b >= 0 && b < binCount && b == GetBin(word, binCount)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetBin(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GetBin("confidential-report", 128)
	}
}
