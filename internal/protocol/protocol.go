// Package protocol defines the wire format of the three-party MKS protocol
// (Figure 1 of the paper): length-framed gob messages between user ↔ data
// owner (enrollment, trapdoors, blind decryption) and user/owner ↔ cloud
// server (upload, search, fetch). Every user→owner request carries an RSA
// signature over a canonical encoding of its content (Section 4.2 /
// Theorem 4).
package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"

	"mkse/internal/blindrsa"
	"mkse/internal/core"
	"mkse/internal/rank"
)

// MaxFrameSize bounds a single message (64 MiB): large enough for bulk
// document uploads, small enough to stop a malicious peer from forcing an
// unbounded allocation.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("protocol: frame exceeds maximum size")

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("protocol: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("protocol: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	// Grow the payload as bytes actually arrive rather than trusting the
	// length prefix: a hostile peer can claim a near-MaxFrameSize frame in
	// four bytes without ever sending the body, and pre-allocating would
	// hand every such claim megabytes of memory.
	var buf bytes.Buffer
	buf.Grow(int(min(n, 64<<10)))
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("protocol: reading frame body: %w", err)
	}
	return buf.Bytes(), nil
}

// Message is the envelope carried in every frame. Exactly one pointer field
// is non-nil; gob omits the rest. An explicit envelope (rather than
// gob-registered interfaces) keeps the wire format self-describing and easy
// to evolve.
type Message struct {
	Error *ErrorMsg

	// Trace, when non-nil on a request, carries the sender's distributed-
	// tracing context (internal/trace): the 128-bit trace ID, the sender's
	// span ID, and the head-sampling decision. A tracing server continues
	// the trace as a child of the carried span and echoes the spans it
	// recorded back in the response's Spans field; a server without tracing
	// ignores both fields entirely. Because gob drops fields the receiving
	// struct does not declare (and zero-values fields the sender omitted),
	// traced and traceless peers interoperate in both directions.
	Trace *TraceContextWire

	// Spans, on a response, returns the spans the server recorded while
	// handling a traced request, for the request's origin to graft into its
	// assembled cross-daemon span tree. Empty on untraced requests.
	Spans []SpanWire

	EnrollReq  *EnrollRequest
	EnrollResp *EnrollResponse

	TrapdoorReq  *TrapdoorRequest
	TrapdoorResp *TrapdoorResponse

	RefreshReq  *RefreshRequest
	RefreshResp *RefreshResponse

	BlindDecryptReq  *BlindDecryptRequest
	BlindDecryptResp *BlindDecryptResponse

	UploadReq  *UploadRequest
	UploadResp *UploadResponse

	DeleteReq  *DeleteRequest
	DeleteResp *DeleteResponse

	SearchReq  *SearchRequest
	SearchResp *SearchResponse

	SearchBatchReq  *SearchBatchRequest
	SearchBatchResp *SearchBatchResponse

	FetchReq  *FetchRequest
	FetchResp *FetchResponse

	ReplicaSubscribeReq  *ReplicaSubscribeRequest
	ReplicaSubscribeResp *ReplicaSubscribeResponse
	ReplicaSnapshot      *ReplicaSnapshotChunk
	ReplicaRecords       *ReplicaRecordBatch
	ReplicaAck           *ReplicaAckMsg

	ReplicaStatusReq  *ReplicaStatusRequest
	ReplicaStatusResp *ReplicaStatusResponse

	PromoteReq  *PromoteRequest
	PromoteResp *PromoteResponse

	ReconfigureReq  *ReconfigureRequest
	ReconfigureResp *ReconfigureResponse

	StatsReq  *StatsRequest
	StatsResp *StatsResponse

	ClusterInfoReq  *ClusterInfoRequest
	ClusterInfoResp *ClusterInfoResponse
}

// Error codes carried in ErrorMsg.Code, for rejections a caller must react
// to mechanically rather than display. Absent (empty) on ordinary failures.
const (
	// CodeStaleTerm rejects a request or stream authenticated by a promotion
	// term older than the receiver's — the sender was failed over and must
	// demote itself.
	CodeStaleTerm = "stale-term"
	// CodeDiverged rejects a replication subscribe whose position lies past
	// the primary's current term start: the follower holds records this
	// history does not share and must bootstrap from a checkpoint.
	CodeDiverged = "diverged"
	// CodeReadOnly rejects a mutation sent to a demoted (fenced) daemon. A
	// failover-aware client treats it like a transport failure: re-probe the
	// replica set for the new primary.
	CodeReadOnly = "read-only"
	// CodeWrongPartition rejects a mutation for a document this partition
	// does not own under the cluster's doc-ID hash map. The sender's
	// partition map disagrees with the server's identity — a misconfigured
	// cluster, which must fail loudly rather than fork the corpus.
	CodeWrongPartition = "wrong-partition"
)

// ErrorMsg reports a request failure. Code, when set, is one of the Code*
// constants and tells a failover-aware peer how to react; Text is for
// humans.
type ErrorMsg struct {
	Text string
	Code string
}

// TraceContextWire is the propagated part of a distributed trace: the
// trace ID (128 bits as two words), the sender's span ID, and whether the
// trace is sampled. Receivers validate before adopting: a zero trace or
// span ID (a truncated or garbage frame) is ignored rather than continued.
type TraceContextWire struct {
	TraceHi, TraceLo uint64
	SpanID           uint64
	Sampled          bool
}

// SpanAttrWire is one key/value annotation on a wire span.
type SpanAttrWire struct {
	Key, Value string
}

// SpanWire is one completed span echoed on a response: the stage's
// position in the trace (trace ID, own and parent span IDs), the recording
// process, and its timing. StartUnixNano carries the wall-clock start so
// the origin can order siblings; DurationNanos is the span's length.
type SpanWire struct {
	TraceHi, TraceLo uint64
	SpanID           uint64
	ParentID         uint64
	Service          string
	Name             string
	StartUnixNano    int64
	DurationNanos    int64
	Attrs            []SpanAttrWire
}

// PublicKeyWire carries an RSA public key.
type PublicKeyWire struct {
	N, E []byte
}

// FromPublicKey converts a key for the wire.
func FromPublicKey(p *blindrsa.PublicKey) PublicKeyWire {
	return PublicKeyWire{N: p.N.Bytes(), E: p.E.Bytes()}
}

// ToPublicKey parses a wire key.
func (w PublicKeyWire) ToPublicKey() (*blindrsa.PublicKey, error) {
	if len(w.N) == 0 || len(w.E) == 0 {
		return nil, fmt.Errorf("protocol: empty public key")
	}
	return &blindrsa.PublicKey{
		N: new(big.Int).SetBytes(w.N),
		E: new(big.Int).SetBytes(w.E),
	}, nil
}

// ParamsWire carries core.Params.
type ParamsWire struct {
	R, D, Bins, U, V, RSABits int
	Levels                    []int
}

// FromParams converts scheme parameters for the wire.
func FromParams(p core.Params) ParamsWire {
	return ParamsWire{R: p.R, D: p.D, Bins: p.Bins, U: p.U, V: p.V,
		RSABits: p.RSABits, Levels: append([]int(nil), p.Levels...)}
}

// ToParams parses wire parameters and validates them.
func (w ParamsWire) ToParams() (core.Params, error) {
	p := core.Params{R: w.R, D: w.D, Bins: w.Bins, U: w.U, V: w.V,
		RSABits: w.RSABits, Levels: rank.Levels(append([]int(nil), w.Levels...))}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// EnrollRequest registers a user's signature key with the data owner.
type EnrollRequest struct {
	UserID  string
	UserPub PublicKeyWire
}

// EnrollResponse delivers the enrollment package: scheme parameters, the
// owner's public key, the current key epoch and the U random-keyword
// trapdoors (step 0 of the protocol; sent over the user↔owner channel,
// never to the server).
type EnrollResponse struct {
	Params          ParamsWire
	OwnerPub        PublicKeyWire
	Epoch           int64
	RandomTrapdoors [][]byte // marshaled bitindex vectors
}

// TrapdoorRequest asks for trapdoor material covering the given bins (step
// 1 of Figure 1). With WantVectors the owner replies with precomputed
// per-keyword index vectors (Section 4.2's alternative mode) instead of the
// bin secrets. Sig authenticates SignableTrapdoor(UserID, BinIDs).
type TrapdoorRequest struct {
	UserID      string
	BinIDs      []int
	WantVectors bool
	Sig         []byte
}

// TrapdoorResponse returns either the per-bin HMAC keys (parallel to
// BinIDs) or, in vector mode, the keyword→index-vector map. Epoch lets the
// client detect key rotation (Section 4.3 trapdoor expiry).
type TrapdoorResponse struct {
	BinIDs  []int
	Keys    [][]byte
	Vectors map[string][]byte // vector mode: keyword → marshaled vector
	Epoch   int64
}

// RefreshRequest re-fetches the enrollment package after a key rotation
// (fresh decoy trapdoors). Sig authenticates SignableRefresh(UserID).
type RefreshRequest struct {
	UserID string
	Sig    []byte
}

// RefreshResponse carries the new epoch and decoy trapdoors.
type RefreshResponse struct {
	Epoch           int64
	RandomTrapdoors [][]byte
}

// BlindDecryptRequest carries a blinded ciphertext z (step 4 of Figure 1).
// Sig authenticates SignableBlindDecrypt(UserID, Z).
type BlindDecryptRequest struct {
	UserID string
	Z      []byte
	Sig    []byte
}

// BlindDecryptResponse returns z̄ = z^d mod N.
type BlindDecryptResponse struct {
	ZBar []byte
}

// UploadRequest stores one document at the cloud server (owner → server).
type UploadRequest struct {
	DocID      string
	Levels     [][]byte // marshaled level indices
	Ciphertext []byte
	EncKey     []byte
}

// UploadResponse acknowledges an upload.
type UploadResponse struct {
	Stored int // total documents now stored
}

// DeleteRequest removes one document — payload, wrapped key and every
// index level — from the cloud server (owner → server, the inverse of
// UploadRequest). On a durably backed server the deletion is logged before
// it is acknowledged.
type DeleteRequest struct {
	DocID string
}

// DeleteResponse acknowledges a deletion.
type DeleteResponse struct {
	Stored int // total documents remaining
}

// SearchRequest submits an r-bit query index (step 2 of Figure 1).
type SearchRequest struct {
	Query []byte // marshaled bitindex vector
	TopK  int    // τ; 0 returns all matches
}

// MatchWire is one ranked hit.
type MatchWire struct {
	DocID string
	Rank  int
	Meta  []byte // marshaled level-1 index (the paper's metadata)
}

// SearchResponse returns rank-ordered matches.
type SearchResponse struct {
	Matches []MatchWire
}

// SearchBatchRequest submits several r-bit query indices to be evaluated in
// one sharded pass over the server's store. Semantically equivalent to one
// SearchRequest per query, but a single frame each way and a single scan of
// every index shard.
type SearchBatchRequest struct {
	Queries [][]byte // marshaled bitindex vectors
	TopK    int      // τ applied to every query; 0 returns all matches
}

// SearchBatchResponse returns one rank-ordered match list per query, in
// request order.
type SearchBatchResponse struct {
	Results [][]MatchWire
}

// ReplicaSubscribeRequest opens a replication stream: a follower asks the
// primary for every write-ahead-log record from position From (the
// follower's own log sequence number) onward. It is the first and only
// request on a replication connection; after the response the primary
// pushes ReplicaSnapshotChunk and ReplicaRecordBatch messages while the
// follower sends ReplicaAckMsg back on the same connection.
type ReplicaSubscribeRequest struct {
	From uint64
	// Term is the follower's promotion term. A primary whose own term is
	// lower has been failed over: it refuses the stream with CodeStaleTerm
	// and demotes itself. (Zero-valued on pre-failover followers, which any
	// term accepts.)
	Term uint64
	// Bootstrap asks the primary to ship a full checkpoint instead of log
	// records, wiping the follower's history. A follower sets it after a
	// CodeDiverged rejection told it its log is not a prefix of the
	// primary's.
	Bootstrap bool
}

// ReplicaSubscribeResponse opens the primary's side of the stream. If the
// primary no longer retains log records back to the requested position, it
// bootstraps the follower instead: SnapshotSize > 0 announces a checkpoint
// covering positions [0, SnapshotLSN), delivered next as one or more
// ReplicaSnapshotChunk messages, after which records stream from
// SnapshotLSN. Position is the primary's log position at subscribe time.
type ReplicaSubscribeResponse struct {
	SnapshotLSN  uint64
	SnapshotSize int    // total checkpoint bytes to follow; 0 = no bootstrap
	Position     uint64 // primary position at subscribe time
	Term         uint64 // primary promotion term; followers reject lower-term streams
	TermStart    uint64 // position where the primary's term began (divergence boundary)
}

// ReplicaSnapshotChunk carries one slice of the bootstrap checkpoint, in
// order. Last marks the final chunk; the reassembled bytes are a complete
// store checkpoint file (MKSESTO2).
type ReplicaSnapshotChunk struct {
	Data []byte
	Last bool
}

// ReplicaRecordBatch carries consecutive write-ahead-log record payloads:
// Records[i] is the mutation at position From+i. Position is the primary's
// log position after the batch, so the follower can compute its own lag. An
// empty batch is a heartbeat: it carries a fresh Position (and proves the
// primary alive) without any records.
type ReplicaRecordBatch struct {
	From     uint64
	Records  [][]byte
	Position uint64
	Term     uint64 // sender's promotion term; a follower on a higher term stops applying
}

// ReplicaAckMsg reports the follower's durably applied position back to the
// primary, which exposes it as that follower's acknowledged position (the
// basis of lag reporting). Sent after each applied batch and heartbeat.
// Term is the follower's promotion term: a primary that hears a higher term
// in an ack has been failed over behind its back and demotes itself.
type ReplicaAckMsg struct {
	Position uint64
	Term     uint64
}

// ReplicaStatusRequest asks any cloud daemon where it stands in the
// replicated log. Read balancers use it to route queries away from lagging
// followers; operators use it to watch catch-up.
type ReplicaStatusRequest struct{}

// FollowerWire is one connected follower as seen by the primary.
type FollowerWire struct {
	Addr  string // follower's remote address on the replication stream
	Acked uint64 // last position the follower acknowledged applying
}

// ReplicaStatusResponse reports a daemon's replication position. On a
// primary, Position and PrimaryPosition are equal and Followers lists every
// connected replication stream. On a follower, Position is its own applied
// log position, PrimaryPosition is the newest position heard from the
// primary (their difference is the follower's lag), and Connected says
// whether the stream is currently up. Durable is false on a memory-only
// daemon, which has no log to replicate.
type ReplicaStatusResponse struct {
	Durable         bool
	Replica         bool
	Connected       bool
	Position        uint64
	PrimaryPosition uint64
	Term            uint64 // the daemon's promotion (fencing) term
	Followers       []FollowerWire
}

// PromoteRequest flips a live follower to primary in place: stop following,
// raise the promotion term to Term, start accepting writes. Term is the
// caller's (the observer's) claim — it must exceed the daemon's current
// term, or the promote is rejected with CodeStaleTerm. Re-sending the same
// term is idempotent, so a promote interrupted by a crash can be retried.
type PromoteRequest struct {
	Term uint64
}

// PromoteResponse acknowledges a promotion with the daemon's resulting term
// and log position (the new term's start — the divergence boundary for
// rejoining nodes).
type PromoteResponse struct {
	Term     uint64
	Position uint64
}

// ReconfigureRequest repoints a daemon at a new primary. Term authenticates
// the instruction: a daemon whose own term exceeds it rejects with
// CodeStaleTerm (the instruction is from a stale observer view). A follower
// drops its stream and re-subscribes to Primary; an old primary receiving
// this learns it was failed over, demotes itself to read-only, and rejoins
// as a follower of Primary. An empty Primary detaches the daemon into
// standalone (no-replication) mode.
type ReconfigureRequest struct {
	Primary string
	Term    uint64
}

// ReconfigureResponse acknowledges a reconfiguration.
type ReconfigureResponse struct {
	Term uint64 // the daemon's term after applying the instruction
}

// StatsRequest asks a cloud daemon for its operational counters: one
// round-trip introspection for operators and read balancers.
type StatsRequest struct{}

// CacheStatsWire reports the daemon's query-result cache counters
// (internal/qcache). Enabled is false — and every other field zero — on a
// daemon started without -cache-mb.
type CacheStatsWire struct {
	Enabled       bool
	Hits          uint64
	Misses        uint64
	Evictions     uint64 // dropped by the LRU byte budget
	Invalidations uint64 // dropped because the store mutated since they were cached
	Entries       int
	Bytes         int64
	MaxBytes      int64
}

// StatsResponse is a point-in-time view of one cloud daemon. WALPosition is
// the daemon's own log sequence number (zero on a memory-only daemon, where
// Durable is false). On a follower, Replica is true and PrimaryPosition is
// the newest position heard from the primary — PrimaryPosition minus
// WALPosition is the replication lag in records; on a primary or standalone
// daemon the two positions are equal.
type StatsResponse struct {
	NumDocuments int
	NumShards    int
	Epoch        uint64 // mutation epoch (the query-result cache's validity clock)

	Durable     bool
	WALPosition uint64

	Replica          bool
	ReplicaConnected bool
	PrimaryPosition  uint64
	Term             uint64 // promotion (fencing) term; bumps on every failover

	// Partition identity (see ClusterInfoResponse); Partitions is 0 on a
	// daemon that is not part of a cluster.
	Partition  int
	Partitions int

	Cache CacheStatsWire
}

// ClusterInfoRequest asks a cloud daemon for its partition identity — the
// partition-map exchange a fat client performs on every cluster dial, so a
// miswired address list (wrong order, wrong count, a server from another
// cluster) is caught before any request is routed by the map.
type ClusterInfoRequest struct{}

// ClusterInfoResponse reports the daemon's static cluster identity as given
// by -partition i/P: Partition is its 0-based index, Partitions the total
// count. Partitions is 0 on a daemon started without -partition (standalone
// or single-node deployments).
type ClusterInfoResponse struct {
	Partition  int
	Partitions int
}

// FetchRequest retrieves one encrypted document (step 3 of Figure 1).
type FetchRequest struct {
	DocID string
}

// FetchResponse carries the ciphertext and the RSA-wrapped key.
type FetchResponse struct {
	DocID      string
	Ciphertext []byte
	EncKey     []byte
}

// Conn wraps a stream with framed gob encode/decode. Not safe for
// concurrent use; callers serialize request/response exchanges.
type Conn struct {
	rw io.ReadWriter
}

// NewConn wraps a transport stream.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// Send gob-encodes one message into a frame.
func (c *Conn) Send(m *Message) error {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("protocol: encoding message: %w", err)
	}
	return WriteFrame(c.rw, buf.b)
}

// Recv reads and decodes one message.
func (c *Conn) Recv() (*Message, error) {
	payload, err := ReadFrame(c.rw)
	if err != nil {
		return nil, err
	}
	var m Message
	if err := gob.NewDecoder(byteReader{payload, new(int)}).Decode(&m); err != nil {
		return nil, fmt.Errorf("protocol: decoding message: %w", err)
	}
	return &m, nil
}

// RemoteError is an ErrorMsg reply surfaced as an error: the peer received
// the request and rejected it. Distinguishing it from a transport failure
// matters to read balancers — a rejected request would be rejected by any
// server, so it is not grounds for failing over, while a broken connection
// is.
type RemoteError struct {
	Text string
	Code string // machine-readable rejection class (Code* constants), if any
}

// Error renders the rejection with the same text errors.Is-style callers
// matched before RemoteError existed.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("protocol: remote error: %s", e.Text)
}

// Roundtrip sends a request and waits for the reply, surfacing ErrorMsg
// replies as *RemoteError.
func (c *Conn) Roundtrip(m *Message) (*Message, error) {
	if err := c.Send(m); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, &RemoteError{Text: resp.Error.Text, Code: resp.Error.Code}
	}
	return resp, nil
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

type byteReader struct {
	b   []byte
	pos *int
}

func (r byteReader) Read(p []byte) (int, error) {
	if *r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[*r.pos:])
	*r.pos += n
	return n, nil
}

// SignableTrapdoor produces the canonical byte string a user signs in a
// trapdoor request. Deterministic encoding is what makes signatures
// verifiable: both sides derive the same bytes from the same fields.
func SignableTrapdoor(userID string, binIDs []int) []byte {
	out := []byte("mkse/trapdoor\x00" + userID + "\x00")
	var tmp [4]byte
	for _, b := range binIDs {
		binary.BigEndian.PutUint32(tmp[:], uint32(b))
		out = append(out, tmp[:]...)
	}
	return out
}

// SignableBlindDecrypt produces the canonical byte string a user signs in a
// blind-decryption request.
func SignableBlindDecrypt(userID string, z []byte) []byte {
	out := []byte("mkse/blind-decrypt\x00" + userID + "\x00")
	return append(out, z...)
}

// SignableRefresh produces the canonical byte string a user signs in an
// enrollment-refresh request.
func SignableRefresh(userID string) []byte {
	return []byte("mkse/refresh\x00" + userID)
}
