package protocol

import (
	"bytes"
	"errors"
	"io"
	"math/big"
	"net"
	"testing"

	"mkse/internal/blindrsa"
	"mkse/internal/core"
	"mkse/internal/rank"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAA}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame round trip mismatch: %d bytes vs %d", len(got), len(p))
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB announced
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameSize+1)); err != ErrFrameTooLarge {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 2, 3}) // announces 10, delivers 3
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream gave %v, want io.EOF", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msg := &Message{TrapdoorReq: &TrapdoorRequest{
		UserID: "alice",
		BinIDs: []int{3, 17, 99},
		Sig:    []byte{1, 2, 3},
	}}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.TrapdoorReq == nil {
		t.Fatal("TrapdoorReq missing after round trip")
	}
	if got.TrapdoorReq.UserID != "alice" || len(got.TrapdoorReq.BinIDs) != 3 {
		t.Errorf("round trip mangled request: %+v", got.TrapdoorReq)
	}
	if got.SearchReq != nil || got.Error != nil {
		t.Error("unrelated fields populated")
	}
}

func TestRoundtripSurfacesRemoteErrors(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		sc := NewConn(server)
		if _, err := sc.Recv(); err != nil {
			return
		}
		_ = sc.Send(&Message{Error: &ErrorMsg{Text: "bin out of range"}})
	}()
	cc := NewConn(client)
	_, err := cc.Roundtrip(&Message{FetchReq: &FetchRequest{DocID: "x"}})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("bin out of range")) {
		t.Errorf("remote error not surfaced: %v", err)
	}
}

func TestPublicKeyWireRoundTrip(t *testing.T) {
	key, err := blindrsa.GenerateKey(1024)
	if err != nil {
		t.Fatal(err)
	}
	w := FromPublicKey(key.Public())
	back, err := w.ToPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(key.N) != 0 || back.E.Cmp(key.E) != 0 {
		t.Error("public key round trip mismatch")
	}
}

func TestPublicKeyWireRejectsEmpty(t *testing.T) {
	if _, err := (PublicKeyWire{}).ToPublicKey(); err == nil {
		t.Error("empty key accepted")
	}
}

func TestParamsWireRoundTrip(t *testing.T) {
	p := core.DefaultParams().WithLevels(rank.Levels{1, 5, 10})
	back, err := FromParams(p).ToParams()
	if err != nil {
		t.Fatal(err)
	}
	if back.R != p.R || back.D != p.D || back.Bins != p.Bins ||
		back.U != p.U || back.V != p.V || back.RSABits != p.RSABits ||
		len(back.Levels) != len(p.Levels) {
		t.Errorf("params round trip mismatch: %+v vs %+v", back, p)
	}
}

func TestParamsWireValidates(t *testing.T) {
	if _, err := (ParamsWire{R: -1}).ToParams(); err == nil {
		t.Error("invalid wire params accepted")
	}
}

func TestSignableEncodingsDeterministicAndDistinct(t *testing.T) {
	a := SignableTrapdoor("alice", []int{1, 2})
	b := SignableTrapdoor("alice", []int{1, 2})
	if !bytes.Equal(a, b) {
		t.Error("SignableTrapdoor not deterministic")
	}
	if bytes.Equal(a, SignableTrapdoor("alice", []int{2, 1})) {
		t.Error("bin order not bound by signature")
	}
	if bytes.Equal(a, SignableTrapdoor("bob", []int{1, 2})) {
		t.Error("user ID not bound by signature")
	}
	z := big.NewInt(123456).Bytes()
	if bytes.Equal(SignableBlindDecrypt("alice", z), SignableTrapdoor("alice", []int{1, 2})) {
		t.Error("domain separation missing between message types")
	}
	if bytes.Equal(SignableBlindDecrypt("alice", z), SignableBlindDecrypt("alice", big.NewInt(9).Bytes())) {
		t.Error("payload not bound by blind-decrypt signature")
	}
}

func TestVectorModeMessagesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(&Message{TrapdoorReq: &TrapdoorRequest{
		UserID: "u", BinIDs: []int{1}, WantVectors: true, Sig: []byte{9},
	}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !got.TrapdoorReq.WantVectors {
		t.Error("WantVectors lost in transit")
	}

	if err := c.Send(&Message{TrapdoorResp: &TrapdoorResponse{
		Epoch:   7,
		Vectors: map[string][]byte{"kw": {1, 2, 3}},
	}}); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.TrapdoorResp.Epoch != 7 {
		t.Errorf("epoch = %d, want 7", got.TrapdoorResp.Epoch)
	}
	if !bytes.Equal(got.TrapdoorResp.Vectors["kw"], []byte{1, 2, 3}) {
		t.Error("vector map lost in transit")
	}
}

func TestRefreshMessagesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(&Message{RefreshReq: &RefreshRequest{UserID: "u", Sig: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.RefreshReq == nil || got.RefreshReq.UserID != "u" {
		t.Fatal("refresh request mangled")
	}
	if err := c.Send(&Message{RefreshResp: &RefreshResponse{
		Epoch: 3, RandomTrapdoors: [][]byte{{1}, {2}},
	}}); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.RefreshResp.Epoch != 3 || len(got.RefreshResp.RandomTrapdoors) != 2 {
		t.Errorf("refresh response mangled: %+v", got.RefreshResp)
	}
}

func TestSignableRefreshDomainSeparated(t *testing.T) {
	if bytes.Equal(SignableRefresh("alice"), SignableTrapdoor("alice", nil)) {
		t.Error("refresh and trapdoor signables collide")
	}
	if bytes.Equal(SignableRefresh("alice"), SignableRefresh("bob")) {
		t.Error("refresh signable does not bind the user ID")
	}
}

func TestConnOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		sc := NewConn(conn)
		m, err := sc.Recv()
		if err != nil {
			done <- err
			return
		}
		if m.SearchReq == nil {
			done <- io.ErrUnexpectedEOF
			return
		}
		done <- sc.Send(&Message{SearchResp: &SearchResponse{
			Matches: []MatchWire{{DocID: "doc-1", Rank: 2}},
		}})
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cc := NewConn(conn)
	resp, err := cc.Roundtrip(&Message{SearchReq: &SearchRequest{Query: []byte{1, 2, 3}, TopK: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SearchResp == nil || len(resp.SearchResp.Matches) != 1 {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if m := resp.SearchResp.Matches[0]; m.DocID != "doc-1" || m.Rank != 2 {
		t.Errorf("match = %+v", m)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSearchBatchMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	req := &Message{SearchBatchReq: &SearchBatchRequest{
		Queries: [][]byte{{1, 2}, {3, 4, 5}},
		TopK:    7,
	}}
	if err := c.Send(req); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.SearchBatchReq == nil {
		t.Fatal("SearchBatchReq missing after round trip")
	}
	if len(got.SearchBatchReq.Queries) != 2 || got.SearchBatchReq.TopK != 7 {
		t.Errorf("round trip mangled request: %+v", got.SearchBatchReq)
	}
	resp := &Message{SearchBatchResp: &SearchBatchResponse{
		Results: [][]MatchWire{
			{{DocID: "a", Rank: 3, Meta: []byte{9}}},
			nil,
		},
	}}
	if err := c.Send(resp); err != nil {
		t.Fatal(err)
	}
	back, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if back.SearchBatchResp == nil || len(back.SearchBatchResp.Results) != 2 {
		t.Fatalf("response round trip mangled: %+v", back.SearchBatchResp)
	}
	if m := back.SearchBatchResp.Results[0][0]; m.DocID != "a" || m.Rank != 3 {
		t.Errorf("match round trip mangled: %+v", m)
	}
}

func TestDeleteMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(&Message{DeleteReq: &DeleteRequest{DocID: "doc-7"}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.DeleteReq == nil || got.DeleteReq.DocID != "doc-7" {
		t.Fatalf("DeleteReq mangled: %+v", got.DeleteReq)
	}
	if got.UploadReq != nil || got.Error != nil {
		t.Error("unrelated fields populated")
	}
	if err := c.Send(&Message{DeleteResp: &DeleteResponse{Stored: 41}}); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.DeleteResp == nil || got.DeleteResp.Stored != 41 {
		t.Fatalf("DeleteResp mangled: %+v", got.DeleteResp)
	}
}

func TestStatsMessagesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(&Message{StatsReq: &StatsRequest{}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.StatsReq == nil {
		t.Fatalf("StatsReq mangled: %+v", got)
	}
	resp := &StatsResponse{
		NumDocuments: 123, NumShards: 8, Epoch: 456,
		Durable: true, WALPosition: 789,
		Replica: true, ReplicaConnected: true, PrimaryPosition: 800,
		Cache: CacheStatsWire{
			Enabled: true, Hits: 10, Misses: 3, Evictions: 1, Invalidations: 2,
			Entries: 7, Bytes: 4096, MaxBytes: 1 << 20,
		},
	}
	if err := c.Send(&Message{StatsResp: resp}); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.StatsResp == nil || *got.StatsResp != *resp {
		t.Fatalf("StatsResp mangled: %+v", got.StatsResp)
	}
}

func TestReplicationMessagesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msgs := []*Message{
		{ReplicaSubscribeReq: &ReplicaSubscribeRequest{From: 42}},
		{ReplicaSubscribeResp: &ReplicaSubscribeResponse{SnapshotLSN: 40, SnapshotSize: 9, Position: 50}},
		{ReplicaSnapshot: &ReplicaSnapshotChunk{Data: []byte("MKSESTO2!"), Last: true}},
		{ReplicaRecords: &ReplicaRecordBatch{From: 40, Records: [][]byte{{1, 2}, {3}}, Position: 42}},
		{ReplicaRecords: &ReplicaRecordBatch{From: 42, Position: 42}}, // heartbeat
		{ReplicaAck: &ReplicaAckMsg{Position: 42}},
		{ReplicaStatusReq: &ReplicaStatusRequest{}},
		{ReplicaStatusResp: &ReplicaStatusResponse{
			Durable: true, Replica: true, Connected: true,
			Position: 42, PrimaryPosition: 50,
			Followers: []FollowerWire{{Addr: "10.0.0.7:1234", Acked: 41}},
		}},
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := c.Recv()
	if err != nil || sub.ReplicaSubscribeReq == nil || sub.ReplicaSubscribeReq.From != 42 {
		t.Fatalf("subscribe request mangled: %+v (%v)", sub, err)
	}
	resp, err := c.Recv()
	if err != nil || resp.ReplicaSubscribeResp == nil || resp.ReplicaSubscribeResp.SnapshotLSN != 40 ||
		resp.ReplicaSubscribeResp.SnapshotSize != 9 || resp.ReplicaSubscribeResp.Position != 50 {
		t.Fatalf("subscribe response mangled: %+v (%v)", resp, err)
	}
	snap, err := c.Recv()
	if err != nil || snap.ReplicaSnapshot == nil || !snap.ReplicaSnapshot.Last ||
		string(snap.ReplicaSnapshot.Data) != "MKSESTO2!" {
		t.Fatalf("snapshot chunk mangled: %+v (%v)", snap, err)
	}
	batch, err := c.Recv()
	if err != nil || batch.ReplicaRecords == nil || batch.ReplicaRecords.From != 40 ||
		len(batch.ReplicaRecords.Records) != 2 || batch.ReplicaRecords.Position != 42 {
		t.Fatalf("record batch mangled: %+v (%v)", batch, err)
	}
	hb, err := c.Recv()
	if err != nil || hb.ReplicaRecords == nil || len(hb.ReplicaRecords.Records) != 0 ||
		hb.ReplicaRecords.Position != 42 {
		t.Fatalf("heartbeat mangled: %+v (%v)", hb, err)
	}
	ack, err := c.Recv()
	if err != nil || ack.ReplicaAck == nil || ack.ReplicaAck.Position != 42 {
		t.Fatalf("ack mangled: %+v (%v)", ack, err)
	}
	if sreq, err := c.Recv(); err != nil || sreq.ReplicaStatusReq == nil {
		t.Fatalf("status request mangled: %+v (%v)", sreq, err)
	}
	st, err := c.Recv()
	if err != nil || st.ReplicaStatusResp == nil {
		t.Fatalf("status response missing: %v", err)
	}
	got := st.ReplicaStatusResp
	if !got.Durable || !got.Replica || !got.Connected || got.Position != 42 || got.PrimaryPosition != 50 ||
		len(got.Followers) != 1 || got.Followers[0].Addr != "10.0.0.7:1234" || got.Followers[0].Acked != 41 {
		t.Fatalf("status response mangled: %+v", got)
	}
}

func TestRemoteErrorType(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		sc := NewConn(server)
		if _, err := sc.Recv(); err != nil {
			return
		}
		_ = sc.Send(&Message{Error: &ErrorMsg{Text: "nope"}})
	}()
	_, err := NewConn(client).Roundtrip(&Message{FetchReq: &FetchRequest{DocID: "x"}})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Text != "nope" {
		t.Fatalf("want *RemoteError{nope}, got %v", err)
	}
}
