package protocol

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// legacyMessage mirrors the pre-tracing Message envelope: the same verb
// fields but no Trace or Spans. Gob matches struct fields by name and
// silently drops fields the receiver does not declare, so a peer built
// before tracing existed and a traced daemon must round-trip against each
// other in both directions — these tests pin that property.
type legacyMessage struct {
	Error *ErrorMsg

	SearchReq  *SearchRequest
	SearchResp *SearchResponse

	StatsReq  *StatsRequest
	StatsResp *StatsResponse

	ClusterInfoReq  *ClusterInfoRequest
	ClusterInfoResp *ClusterInfoResponse
}

func TestTracedMessageDecodesOnTracelessPeer(t *testing.T) {
	// A traced daemon replies with Spans attached (and a traced client
	// sends Trace attached); a PR 9 binary must decode the verb payload
	// and never see the trace fields.
	var wire bytes.Buffer
	err := NewConn(&wire).Send(&Message{
		Trace:      &TraceContextWire{TraceHi: 1, TraceLo: 2, SpanID: 3, Sampled: true},
		Spans:      []SpanWire{{TraceHi: 1, TraceLo: 2, SpanID: 9, Name: "server:search"}},
		SearchResp: &SearchResponse{Matches: []MatchWire{{DocID: "doc-1", Rank: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(&wire)
	if err != nil {
		t.Fatal(err)
	}
	var legacy legacyMessage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&legacy); err != nil {
		t.Fatalf("traceless peer failed to decode traced frame: %v", err)
	}
	if legacy.SearchResp == nil || len(legacy.SearchResp.Matches) != 1 ||
		legacy.SearchResp.Matches[0].DocID != "doc-1" {
		t.Fatalf("verb payload mangled for traceless peer: %+v", legacy.SearchResp)
	}
}

func TestTracelessMessageDecodesOnTracedDaemon(t *testing.T) {
	// A PR 9 peer sends frames that never mention Trace/Spans; a traced
	// daemon must decode them with both fields zero-valued.
	var payload bytes.Buffer
	err := gob.NewEncoder(&payload).Encode(&legacyMessage{
		SearchReq: &SearchRequest{Query: []byte{1, 2, 3}, TopK: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := WriteFrame(&wire, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	m, err := NewConn(&wire).Recv()
	if err != nil {
		t.Fatalf("traced daemon failed to decode traceless frame: %v", err)
	}
	if m.Trace != nil || m.Spans != nil {
		t.Fatalf("traceless frame grew trace fields: Trace=%+v Spans=%+v", m.Trace, m.Spans)
	}
	if m.SearchReq == nil || m.SearchReq.TopK != 5 || !bytes.Equal(m.SearchReq.Query, []byte{1, 2, 3}) {
		t.Fatalf("verb payload mangled on traced daemon: %+v", m.SearchReq)
	}
}
