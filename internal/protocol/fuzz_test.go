package protocol

import (
	"bytes"
	"testing"
)

func TestClusterInfoMessagesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(&Message{ClusterInfoReq: &ClusterInfoRequest{}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.ClusterInfoReq == nil {
		t.Fatalf("ClusterInfoReq mangled: %+v", got)
	}
	resp := &ClusterInfoResponse{Partition: 3, Partitions: 5}
	if err := c.Send(&Message{ClusterInfoResp: resp}); err != nil {
		t.Fatal(err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.ClusterInfoResp == nil || *got.ClusterInfoResp != *resp {
		t.Fatalf("ClusterInfoResp mangled: %+v", got.ClusterInfoResp)
	}
}

func TestStatsResponsePartitionFieldsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	resp := &StatsResponse{NumDocuments: 7, Partition: 2, Partitions: 4}
	if err := c.Send(&Message{StatsResp: resp}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.StatsResp == nil || got.StatsResp.Partition != 2 || got.StatsResp.Partitions != 4 {
		t.Fatalf("partition identity mangled in StatsResponse: %+v", got.StatsResp)
	}
}

// frame encodes one message into raw frame bytes for fuzz seeding.
func frame(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := NewConn(&buf).Send(m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMessageDecode throws hostile bytes at the frame decoder: whatever a
// peer sends, Recv must return a message or an error, never panic or hang.
// Seeds cover every cluster-protocol message plus classic framing traps
// (truncated frames, oversized length prefixes, corrupted gob payloads).
func FuzzMessageDecode(f *testing.F) {
	f.Add(frame(f, &Message{ClusterInfoReq: &ClusterInfoRequest{}}))
	f.Add(frame(f, &Message{ClusterInfoResp: &ClusterInfoResponse{Partition: 1, Partitions: 3}}))
	f.Add(frame(f, &Message{StatsResp: &StatsResponse{NumDocuments: 9, Partition: 2, Partitions: 4}}))
	f.Add(frame(f, &Message{SearchReq: &SearchRequest{Query: []byte{1, 2, 3}, TopK: 5}}))
	f.Add(frame(f, &Message{Error: &ErrorMsg{Text: "no", Code: CodeWrongPartition}}))
	f.Add(frame(f, &Message{
		Trace:     &TraceContextWire{TraceHi: 0xdead, TraceLo: 0xbeef, SpanID: 7, Sampled: true},
		SearchReq: &SearchRequest{Query: []byte{9}, TopK: 3},
	}))
	f.Add(frame(f, &Message{ // garbage trace context: zero IDs claiming sampled
		Trace:     &TraceContextWire{Sampled: true},
		SearchReq: &SearchRequest{Query: []byte{9}, TopK: 3},
	}))
	f.Add(frame(f, &Message{
		SearchResp: &SearchResponse{Matches: []MatchWire{{DocID: "d", Rank: 1}}},
		Spans: []SpanWire{
			{TraceHi: 1, TraceLo: 2, SpanID: 3, ParentID: 4, Service: "cloud-p0",
				Name: "server:search", StartUnixNano: 12345, DurationNanos: 6789,
				Attrs: []SpanAttrWire{{Key: "verb", Value: "search"}}},
			{Name: "scan"}, // truncated span: zero IDs must decode harmlessly
		},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2})                   // length longer than payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	corrupt := frame(f, &Message{ClusterInfoResp: &ClusterInfoResponse{}})
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(bytes.NewBuffer(data))
		for i := 0; i < 4; i++ { // drain several frames, not just the first
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m == nil {
				t.Fatal("Recv returned nil message and nil error")
			}
		}
	})
}
