// Package buildinfo stamps the binaries with their version and commit.
// Release builds inject both via the linker:
//
//	go build -ldflags "-X mkse/internal/buildinfo.Version=v1.2.3 \
//	                   -X mkse/internal/buildinfo.Commit=$(git rev-parse --short HEAD)" ./cmd/...
//
// Unstamped builds fall back to the module's VCS metadata when the Go
// toolchain embedded it, and to "dev"/"unknown" otherwise. Every binary
// exposes the result through its -version flag, and the telemetry-enabled
// daemons additionally export it as the mkse_build_info gauge so a fleet's
// deployed versions can be inventoried from Prometheus alone.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version and Commit are injected with -ldflags -X; see the package comment.
var (
	Version = "dev"
	Commit  = ""
)

// resolve backfills Commit from the build's embedded VCS metadata.
func resolve() (version, commit string) {
	version, commit = Version, Commit
	if commit == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					commit = s.Value
					if len(commit) > 12 {
						commit = commit[:12]
					}
				}
			}
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	return version, commit
}

// Fields returns the resolved version and commit, the label values of the
// mkse_build_info gauge.
func Fields() (version, commit string) { return resolve() }

// String renders the one-line -version output for the named binary.
func String(binary string) string {
	version, commit := resolve()
	return fmt.Sprintf("%s %s (commit %s, %s %s/%s)",
		binary, version, commit, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
