module mkse

go 1.24
