package mkse

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"mkse/internal/rank"
)

var (
	sysOnce sync.Once
	sysVal  *System
	sysErr  error
)

// sharedSystem builds one ranked System reused across facade tests.
func sharedSystem(t *testing.T) *System {
	sysOnce.Do(func() {
		p := DefaultParams()
		p.Levels = rank.Levels{1, 5, 10}
		p.Bins = 64
		sysVal, sysErr = NewSystem(p)
		if sysErr != nil {
			return
		}
		docs := map[string]string{
			"finance-q1":  "cloud revenue grew while server costs fell in the first quarter",
			"finance-q2":  "cloud revenue flat but storage demand grew in the second quarter",
			"eng-design":  "the encrypted index design uses trapdoor keys and ranking levels",
			"eng-history": "legacy search server rewrite postponed",
		}
		for id, text := range docs {
			if sysErr = sysVal.AddDocument(id, []byte(text)); sysErr != nil {
				return
			}
		}
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

func TestSystemSearchAndRetrieve(t *testing.T) {
	s := sharedSystem(t)
	alice, err := s.NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := s.Search(alice, []string{"cloud", "revenue"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, m := range matches {
		ids[m.DocID] = true
	}
	if !ids["finance-q1"] || !ids["finance-q2"] {
		t.Errorf("finance documents missing from matches: %v", matches)
	}
	pt, err := s.Retrieve(alice, "finance-q1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pt, []byte("quarterly")) && !bytes.Contains(pt, []byte("first quarter")) {
		t.Errorf("retrieved plaintext unexpected: %q", pt)
	}
}

func TestSystemTopK(t *testing.T) {
	s := sharedSystem(t)
	bob, err := s.NewUser("bob")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := s.Search(bob, []string{"grew"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Errorf("topK=1 returned %d matches", len(matches))
	}
}

func TestSystemRejectsEmptyDocument(t *testing.T) {
	s := sharedSystem(t)
	if err := s.AddDocument("empty", []byte("!!! ...")); err == nil {
		t.Error("keyword-less document accepted")
	}
}

func TestSystemSearchUnknownKeywordFindsNothing(t *testing.T) {
	s := sharedSystem(t)
	carol, err := s.NewUser("carol")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := s.Search(carol, []string{"zzzznonexistent"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// False accepts are possible in principle but vanishingly rare at these
	// parameters with 4 documents.
	if len(matches) != 0 {
		t.Logf("note: %d false accepts for unknown keyword", len(matches))
	}
}

func TestSystemMultipleUsersIndependent(t *testing.T) {
	s := sharedSystem(t)
	u1, err := s.NewUser("indep-1")
	if err != nil {
		t.Fatal(err)
	}
	u2, err := s.NewUser("indep-2")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s.Search(u1, []string{"encrypted"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Search(u2, []string{"encrypted"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	has := func(ms []Match, id string) bool {
		for _, m := range ms {
			if m.DocID == id {
				return true
			}
		}
		return false
	}
	if !has(m1, "eng-design") || !has(m2, "eng-design") {
		t.Error("both users should find eng-design")
	}
}

func TestSystemDuplicateUser(t *testing.T) {
	s := sharedSystem(t)
	if _, err := s.NewUser("dup-user"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewUser("dup-user"); err == nil {
		t.Error("duplicate user enrollment accepted")
	}
}

func TestTokenizeFacade(t *testing.T) {
	tf := Tokenize("Cloud CLOUD cloud!", 3)
	if tf["cloud"] != 3 {
		t.Errorf("Tokenize facade broken: %v", tf)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.R != 448 || p.D != 6 || p.U != 60 || p.V != 30 || p.RSABits != 1024 {
		t.Errorf("DefaultParams diverge from the paper: %+v", p)
	}
}

func TestAddDocumentWithKeywordsRanked(t *testing.T) {
	s := sharedSystem(t)
	tf := map[string]int{"hotword": 12, "coldword": 1}
	if err := s.AddDocumentWithKeywords("ranked-doc", tf, []byte("body")); err != nil {
		t.Fatal(err)
	}
	u, err := s.NewUser("rank-checker")
	if err != nil {
		t.Fatal(err)
	}
	hot, err := s.Search(u, []string{"hotword"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hotRank int
	for _, m := range hot {
		if m.DocID == "ranked-doc" {
			hotRank = m.Rank
		}
	}
	if hotRank != 3 {
		t.Errorf("hotword rank = %d, want 3 (tf 12 >= threshold 10)", hotRank)
	}
	cold, err := s.Search(u, []string{"coldword"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var coldRank int
	for _, m := range cold {
		if m.DocID == "ranked-doc" {
			coldRank = m.Rank
		}
	}
	if coldRank != 1 {
		t.Errorf("coldword rank = %d, want 1 (tf 1)", coldRank)
	}
}

// The networked facade end to end: daemons via the re-exported service
// types, client via mkse.Dial, upload via mkse.UploadAll.
func TestNetworkedFacade(t *testing.T) {
	params := DefaultParams()
	params.Bins = 32
	owner, err := NewOwner(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewCloudServer(params)
	if err != nil {
		t.Fatal(err)
	}
	ownerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ownerL.Close()
	cloudL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudL.Close()
	go func() { _ = (&OwnerService{Owner: owner}).Serve(ownerL) }()
	go func() { _ = (&CloudService{Server: cloud}).Serve(cloudL) }()

	doc := &Document{
		ID:        "facade-doc",
		TermFreqs: Tokenize("the facade works over tcp sockets", 3),
		Content:   []byte("the facade works over tcp sockets"),
	}
	si, enc, err := owner.Prepare(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := UploadAll(cloudL.Addr().String(), []UploadItem{{Index: si, Doc: enc}}); err != nil {
		t.Fatal(err)
	}

	client, err := Dial("facade-user", ownerL.Addr().String(), cloudL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	matches, err := client.Search([]string{"facade", "sockets"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].DocID != "facade-doc" {
		t.Fatalf("facade search failed: %v", matches)
	}
	pt, err := client.Retrieve("facade-doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pt, []byte("facade works")) {
		t.Errorf("retrieved %q", pt)
	}
}

func ExampleSystem() {
	sys, err := NewSystem(DefaultParams())
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.AddDocument("memo", []byte("the merger closes friday")); err != nil {
		fmt.Println(err)
		return
	}
	user, err := sys.NewUser("alice")
	if err != nil {
		fmt.Println(err)
		return
	}
	matches, err := sys.Search(user, []string{"merger"}, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	pt, err := sys.Retrieve(user, matches[0].DocID)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(string(pt))
	// Output: the merger closes friday
}

func TestSystemSearchBatch(t *testing.T) {
	s := sharedSystem(t)
	u, err := s.NewUser("batcher")
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]string{
		{"cloud", "revenue"},
		{"trapdoor"},
	}
	results, err := s.SearchBatch(u, queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d result sets, want 2", len(results))
	}
	ids := make(map[string]bool)
	for _, m := range results[0] {
		ids[m.DocID] = true
	}
	if !ids["finance-q1"] || !ids["finance-q2"] {
		t.Errorf("batch query 0 missed finance documents: %v", results[0])
	}
	found := false
	for _, m := range results[1] {
		if m.DocID == "eng-design" {
			found = true
		}
	}
	if !found {
		t.Errorf("batch query 1 missed eng-design: %v", results[1])
	}
}

// DeleteDocument removes a document from search and retrieval; the System
// facade surfaces the server's not-found error for unknown IDs. Uses a
// private System so the shared corpus stays intact.
func TestSystemDeleteDocument(t *testing.T) {
	p := DefaultParams()
	p.Bins = 64
	s, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocument("keep", []byte("shared cloud revenue report for the board")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocument("drop", []byte("shared cloud revenue draft to retract later")); err != nil {
		t.Fatal(err)
	}
	u, err := s.NewUser("deleter")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := s.Search(u, []string{"shared", "revenue"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("expected both documents before deletion, got %d", len(matches))
	}
	if err := s.DeleteDocument("drop"); err != nil {
		t.Fatal(err)
	}
	matches, err = s.Search(u, []string{"shared", "revenue"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].DocID != "keep" {
		t.Fatalf("after deletion got %+v, want only %q", matches, "keep")
	}
	if _, err := s.Retrieve(u, "drop"); err == nil {
		t.Fatal("Retrieve of deleted document succeeded")
	}
	if err := s.DeleteDocument("drop"); err == nil {
		t.Fatal("deleting a deleted document succeeded")
	}
}
